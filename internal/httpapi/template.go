package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/template"
)

// Template-store endpoints: the cluster-warming and introspection surface of
// the learned-wrapper fast path (docs/WRAPPER.md).
//
//	POST /v1/template/publish  {entry}  — absorb a peer's learned wrapper
//	GET  /v1/template/stats             — store counters
//	GET  /v1/template/export            — full store as NDJSON, LRU-first
//
// All answer 503 when the node runs without a wrapper store, so a publisher
// hitting a misconfigured peer sees a clean failure, not a 404 it could
// mistake for a routing bug. Export is the serving half of the joiner warmup
// state transfer (template.Pull reads it; see docs/MEMBERSHIP.md).

func registerTemplateRoutes(mux *http.ServeMux, s server) {
	mux.HandleFunc("POST /v1/template/publish", s.handleTemplatePublish)
	mux.HandleFunc("GET /v1/template/stats", s.handleTemplateStats)
	mux.HandleFunc("GET "+template.ExportPath, s.handleTemplateExport)
}

func (s server) handleTemplatePublish(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Templates == nil {
		writeErr(w, http.StatusServiceUnavailable,
			errors.New("this node has no wrapper store"))
		return
	}
	var e template.Entry
	if !decodeJSON(w, r, &e) {
		return
	}
	// Absorb, not Put: a published entry must not be re-announced through
	// OnStore, or two warmed replicas would bounce it forever.
	if err := s.cfg.Templates.Absorb(&e); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"absorbed": e.Key})
}

func (s server) handleTemplateStats(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Templates == nil {
		writeErr(w, http.StatusServiceUnavailable,
			errors.New("this node has no wrapper store"))
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Templates.Stats())
}

// handleTemplateExport streams the full store as NDJSON, one entry per line,
// least recently used first — replaying in order reproduces the source's LRU
// order in the receiver. This is what a joining replica pulls from its ring
// neighbors before taking traffic.
func (s server) handleTemplateExport(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Templates == nil {
		writeErr(w, http.StatusServiceUnavailable,
			errors.New("this node has no wrapper store"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, e := range s.cfg.Templates.Entries() {
		if err := enc.Encode(e); err != nil {
			return // mid-stream write failure: the puller sees a torn stream and retries elsewhere
		}
	}
}

// responseFromEntry rebuilds the wire response from a stored wrapper entry,
// field-for-field the way toDiscoverResponse builds it from a fresh result —
// the conformance suite holds the two byte-identical.
func responseFromEntry(e *template.Entry) *discoverResponse {
	out := &discoverResponse{
		Separator: e.Separator,
		TopTags:   append([]string(nil), e.TopTags...),
		Subtree:   e.Subtree,
		Rankings:  map[string][]rankRow{},
	}
	for _, s := range e.Scores {
		out.Scores = append(out.Scores, scoreBody{Tag: s.Tag, CF: s.CF})
	}
	for name, rows := range e.Rankings {
		rr := make([]rankRow, 0, len(rows))
		for _, row := range rows {
			rr = append(rr, rankRow{Tag: row.Tag, Rank: row.Rank})
		}
		out.Rankings[name] = rr
	}
	for _, c := range e.Candidates {
		out.Candidates = append(out.Candidates, candidateBody{Tag: c.Tag, Count: c.Count})
	}
	return out
}
