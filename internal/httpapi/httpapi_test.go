package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/paperdoc"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServeMux())
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, path string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var decoded map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, decoded
}

func str(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
	return s
}

func TestDiscoverEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := post(t, srv, "/v1/discover", map[string]any{
		"html": paperdoc.Figure2, "ontology": "obituary",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body["error"])
	}
	if got := str(t, body["separator"]); got != "hr" {
		t.Errorf("separator = %q", got)
	}
	var scores []struct {
		Tag string  `json:"tag"`
		CF  float64 `json:"cf"`
	}
	if err := json.Unmarshal(body["scores"], &scores); err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 || scores[0].Tag != "hr" || scores[0].CF < 0.999 {
		t.Errorf("scores = %+v", scores)
	}
	var rankings map[string][]struct {
		Tag  string `json:"tag"`
		Rank int    `json:"rank"`
	}
	if err := json.Unmarshal(body["rankings"], &rankings); err != nil {
		t.Fatal(err)
	}
	if len(rankings) != 5 {
		t.Errorf("rankings = %d heuristics, want 5", len(rankings))
	}
}

func TestDiscoverXMLEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := post(t, srv, "/v1/discover", map[string]any{
		"xml":            "<c><item>a b</item><item>c d</item><item>e f</item></c>",
		"separator_list": []string{"item"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body["error"])
	}
	if got := str(t, body["separator"]); got != "item" {
		t.Errorf("separator = %q", got)
	}
}

func TestDiscoverErrors(t *testing.T) {
	srv := newServer(t)
	cases := []struct {
		name string
		body any
		want int
	}{
		{"neither html nor xml", map[string]any{}, http.StatusBadRequest},
		{"both html and xml", map[string]any{"html": "<p>", "xml": "<x/>"}, http.StatusBadRequest},
		{"bad ontology", map[string]any{"html": "<p>a</p>", "ontology": "garbage no newline works as name"}, http.StatusBadRequest},
		{"no candidates", map[string]any{"html": "plain text"}, http.StatusUnprocessableEntity},
		{"unknown field", map[string]any{"html": "<p>", "bogus": 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, srv, "/v1/discover", c.body)
			if resp.StatusCode != c.want {
				t.Errorf("status = %d, want %d (%s)", resp.StatusCode, c.want, body["error"])
			}
			if _, ok := body["error"]; !ok {
				t.Error("error body missing")
			}
		})
	}
}

func TestRecordsEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := post(t, srv, "/v1/records", map[string]any{"html": paperdoc.Figure2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var records []struct {
		Text       string `json:"text"`
		Start, End int
	}
	if err := json.Unmarshal(body["records"], &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d, want 4", len(records))
	}
	if !strings.Contains(records[1].Text, "Lemar K. Adamson") {
		t.Errorf("record 2 text = %.40q", records[1].Text)
	}
}

func TestExtractEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := post(t, srv, "/v1/extract", map[string]any{
		"html": paperdoc.Figure2, "ontology": "obituary",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body["error"])
	}
	var db map[string][]map[string]*string
	if err := json.Unmarshal(body["database"], &db); err != nil {
		t.Fatal(err)
	}
	if len(db["Obituary"]) != 3 {
		t.Errorf("obituaries = %d, want 3", len(db["Obituary"]))
	}
	if name := db["Obituary"][0]["DeceasedName"]; name == nil || *name != "Lemar K. Adamson" {
		t.Errorf("first name = %v", name)
	}
}

func TestExtractRequiresOntology(t *testing.T) {
	srv := newServer(t)
	resp, _ := post(t, srv, "/v1/extract", map[string]any{"html": paperdoc.Figure2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestExtractWithInlineDSL(t *testing.T) {
	srv := newServer(t)
	dsl := "ontology Mini\nentity Mini\n" +
		"object A : one-to-one {\n keyword `died on`\n}\n" +
		"object B : one-to-one {\n keyword `Funeral`\n}\n" +
		"object C : one-to-one {\n keyword `Interment`\n}\n"
	resp, body := post(t, srv, "/v1/extract", map[string]any{
		"html": paperdoc.Figure2, "ontology": dsl,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body["error"])
	}
}

func TestClassifyEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := post(t, srv, "/v1/classify", map[string]any{
		"html": paperdoc.Figure2, "ontology": "obituary",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body["error"])
	}
	if got := str(t, body["kind"]); got != "multiple-records" {
		t.Errorf("kind = %q", got)
	}
}

func TestOntologiesEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/ontologies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Builtin    []string `json:"builtin"`
		Heuristics []string `json:"heuristics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Builtin) != 4 || len(body.Heuristics) != 5 {
		t.Errorf("body = %+v", body)
	}
}

func TestWrapperLearnAndApply(t *testing.T) {
	srv := newServer(t)
	// Two bold runs per record: a tag occurring exactly once per record is
	// indistinguishable from the separator (see DESIGN.md's exactly-once
	// trap), so single-bold pages legitimately learn <b>.
	page := `<html><body><div>
<hr><b>Ada Smith</b> died on March 1, 1998. Funeral services Friday at <b>MEMORIAL CHAPEL</b>. Interment follows.
<hr><b>Bo Jones</b> passed away on March 2, 1998. Funeral services Saturday at <b>SUNSET CHAPEL</b>. Interment follows.
<hr><b>Cy Brown</b> died on March 3, 1998. Funeral services Sunday at <b>HEATHER MORTUARY</b>. Interment follows.
<hr></div></body></html>`

	resp, body := post(t, srv, "/v1/wrapper/learn", map[string]any{
		"samples": []string{page, page}, "ontology": "obituary",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("learn status = %d: %s", resp.StatusCode, body["error"])
	}
	if got := str(t, body["separator"]); got != "hr" {
		t.Errorf("learned separator = %q", got)
	}

	resp, body = post(t, srv, "/v1/wrapper/apply", map[string]any{
		"wrapper": json.RawMessage(body["wrapper"]), "html": page,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply status = %d: %s", resp.StatusCode, body["error"])
	}
	var records []recordBody
	if err := json.Unmarshal(body["records"], &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Errorf("records = %d, want 3", len(records))
	}
}

func TestWrapperApplyDriftIs409(t *testing.T) {
	srv := newServer(t)
	page := `<div><hr><b>A</b> x <b>one</b> more<hr><b>B</b> y <b>two</b> more<hr><b>C</b> z <b>three</b> more<hr></div>`
	resp, body := post(t, srv, "/v1/wrapper/learn", map[string]any{"samples": []string{page}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("learn: %d %s", resp.StatusCode, body["error"])
	}
	// A redesigned page: table rows, no hr at all.
	redesigned := `<table><tr><td>a one</td></tr><tr><td>b two</td></tr><tr><td>c three</td></tr></table>`
	resp, _ = post(t, srv, "/v1/wrapper/apply", map[string]any{
		"wrapper": json.RawMessage(body["wrapper"]), "html": redesigned,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("drift status = %d, want 409", resp.StatusCode)
	}
}

func TestWrapperEndpointErrors(t *testing.T) {
	srv := newServer(t)
	resp, _ := post(t, srv, "/v1/wrapper/learn", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("learn without samples = %d", resp.StatusCode)
	}
	resp, _ = post(t, srv, "/v1/wrapper/apply", map[string]any{"html": "<p>x</p>"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("apply without wrapper = %d", resp.StatusCode)
	}
	resp, _ = post(t, srv, "/v1/wrapper/apply", map[string]any{
		"wrapper": json.RawMessage(`"garbage"`), "html": "<p>x</p>",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("apply with bad wrapper = %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/discover")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/discover status = %d, want 405", resp.StatusCode)
	}
}

func TestBodyLimit(t *testing.T) {
	srv := newServer(t)
	huge := map[string]any{"html": strings.Repeat("x", MaxBodyBytes+1024)}
	resp, body := post(t, srv, "/v1/discover", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
	if msg := str(t, body["error"]); !strings.Contains(msg, "exceeds") {
		t.Errorf("error message %q does not mention the limit", msg)
	}
}
