package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzDiscoverRequest: arbitrary request bodies against /v1/discover must
// never panic a handler or produce a 5xx — every malformed input is the
// client's problem (400/413/422), and anything accepted answers 200. Runs
// against the full middleware stack so the decoder, the ontology resolver,
// and the pipeline's error mapping are all in the loop.
func FuzzDiscoverRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"html":"<div><hr><b>A</b> x<hr><b>B</b> y<hr></div>"}`,
		`{"html":"<div><hr>x<hr></div>","ontology":"obituary"}`,
		`{"xml":"<r><i>a</i><i>b</i></r>"}`,
		`{"html":"x","xml":"y"}`,
		`{"html":"<div>x</div>","ontology":"ontology X\nentity X\nobject A : one-to-one {\nkeyword ` + "`k`" + `\n}"}`,
		`{"html":"<div>x</div>","separator_list":["hr","br"]}`,
		`{"html":"<div>x</div>","unknown_field":1}`,
		`{"html":`,
		`[1,2,3]`,
		`"just a string"`,
		`{"html":"` + strings.Repeat("<div>", 50) + `"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	handler := NewHandler(Config{CacheSize: 16})
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/discover", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("status %d for body %q: %s", rec.Code, body, rec.Body.String())
		}
	})
}
