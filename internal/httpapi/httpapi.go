// Package httpapi exposes the record-boundary pipeline as a JSON HTTP
// service: boundary discovery, record splitting, full extraction, and
// document classification. It is the deployment surface a crawler fleet
// would call; cmd/serve wires it to a listener.
//
// Endpoints (all POST bodies and responses are JSON):
//
//	POST /v1/discover  {html|xml, ontology?}     → separator, scores, rankings
//	POST /v1/discover/batch  {documents: [...]}   → per-document results, in order
//	POST /v1/records   {html, ontology?}          → cleaned record chunks
//	POST /v1/extract   {html, ontology}           → populated database
//	POST /v1/classify  {html, ontology}           → document kind + evidence
//	POST /v1/wrapper/learn  {samples, ontology?}  → reusable site wrapper
//	POST /v1/wrapper/apply  {wrapper, html}       → records (409 on drift)
//	GET  /v1/ontologies                           → built-in ontology names
//	GET  /healthz                                 → ok
//	GET  /metrics                                 → Prometheus text format
//	GET  /debug/vars                              → expvar JSON
package httpapi

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"

	"repro/internal/certainty"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dbgen"
	"repro/internal/obs"
	"repro/internal/ontology"
)

// MaxBodyBytes bounds request bodies; 1998-era pages were tens of
// kilobytes, and even generous modern listings fit far below this.
const MaxBodyBytes = 8 << 20

// Config carries the service's observability sinks and serving-layer
// tuning. The zero value is valid: a nil Logger disables request logging, a
// nil Metrics disables metric collection (the /metrics endpoint then serves
// an empty exposition), a zero CacheSize disables the result cache, and a
// zero BatchWorkers sizes the batch pool to GOMAXPROCS.
type Config struct {
	// Logger receives one structured "request" record per served request.
	Logger *slog.Logger
	// Metrics collects HTTP middleware metrics and is threaded into the
	// pipeline via core.Options, so /metrics shows per-stage and
	// per-heuristic counters alongside the per-route HTTP series.
	Metrics *obs.Registry
	// CacheSize bounds the discovery result cache (entries). Repeated
	// /v1/discover (and batch) requests for an identical document and
	// options are answered from the cache; hits, misses, and evictions
	// surface as boundary_cache_* metrics. Zero or negative disables it.
	CacheSize int
	// BatchWorkers bounds how many documents one /v1/discover/batch request
	// processes concurrently. Zero or negative selects GOMAXPROCS.
	BatchWorkers int
}

// server binds the handlers to one Config.
type server struct {
	cfg   Config
	cache *resultCache
}

// NewHandler returns the full service handler: the routing table wrapped in
// request-logging + metrics middleware, plus GET /metrics and
// GET /debug/vars.
func NewHandler(cfg Config) http.Handler {
	mux := newMux(server{cfg: cfg, cache: newResultCache(cfg.CacheSize, cfg.Metrics)})
	mux.Handle("GET /metrics", cfg.Metrics.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	route := func(r *http.Request) string {
		_, pattern := mux.Handler(r)
		return pattern
	}
	return obs.Middleware(mux, cfg.Logger, cfg.Metrics, route)
}

// NewServeMux returns the bare routing table with no middleware and no
// observability endpoints — the pre-observability surface, kept for embedders
// that bring their own. Most callers want NewHandler.
func NewServeMux() *http.ServeMux {
	return newMux(server{})
}

func newMux(s server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/discover", s.handleDiscover)
	mux.HandleFunc("POST /v1/discover/batch", s.handleDiscoverBatch)
	mux.HandleFunc("POST /v1/records", s.handleRecords)
	mux.HandleFunc("POST /v1/extract", s.handleExtract)
	mux.HandleFunc("POST /v1/classify", s.handleClassify)
	mux.HandleFunc("GET /v1/ontologies", s.handleOntologies)
	registerWrapperRoutes(mux, s)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// pipelineOptions threads the server's metrics into a discovery call.
func (s server) pipelineOptions(ont *ontology.Ontology, separatorList []string) core.Options {
	return core.Options{
		Ontology:      ont,
		SeparatorList: separatorList,
		Metrics:       s.cfg.Metrics,
	}
}

// request is the shared request envelope.
type request struct {
	// HTML is the document to process; XML is its XML-mode alternative
	// (exactly one must be set for discover; records/extract/classify are
	// HTML-only).
	HTML string `json:"html,omitempty"`
	XML  string `json:"xml,omitempty"`
	// Ontology is a built-in name ("obituary", "carad", "jobad", "course")
	// or full DSL source (detected by the presence of a newline).
	Ontology string `json:"ontology,omitempty"`
	// SeparatorList optionally overrides IT's identifiable-separator list.
	SeparatorList []string `json:"separator_list,omitempty"`
}

// errorBody is the uniform error response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers already sent; nothing useful to do on error
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decodeJSON parses a JSON body into v with the body limit applied,
// answering 400 on malformed input and 413 when the body exceeds
// MaxBodyBytes. Reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", maxErr.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// decode parses the shared request envelope.
func decode(w http.ResponseWriter, r *http.Request) (*request, bool) {
	var req request
	if !decodeJSON(w, r, &req) {
		return nil, false
	}
	return &req, true
}

// resolveOntology turns the envelope's ontology field into a parsed
// ontology; empty means nil (OM declines).
func (req *request) resolveOntology() (*ontology.Ontology, error) {
	if req.Ontology == "" {
		return nil, nil
	}
	if ont := ontology.Builtin(req.Ontology); ont != nil {
		return ont, nil
	}
	ont, err := ontology.Parse(req.Ontology)
	if err != nil {
		return nil, fmt.Errorf("ontology is neither built-in (%v) nor valid DSL: %w",
			ontology.BuiltinNames(), err)
	}
	return ont, nil
}

// discoverResponse mirrors core.Result in wire-friendly form.
type discoverResponse struct {
	Separator  string               `json:"separator"`
	TopTags    []string             `json:"top_tags"`
	Scores     []scoreBody          `json:"scores"`
	Rankings   map[string][]rankRow `json:"rankings"`
	Candidates []candidateBody      `json:"candidates"`
	Subtree    string               `json:"subtree"`
}

type scoreBody struct {
	Tag string  `json:"tag"`
	CF  float64 `json:"cf"`
}

type rankRow struct {
	Tag  string `json:"tag"`
	Rank int    `json:"rank"`
}

type candidateBody struct {
	Tag   string `json:"tag"`
	Count int    `json:"count"`
}

func toDiscoverResponse(res *core.Result) *discoverResponse {
	out := &discoverResponse{
		Separator: res.Separator,
		TopTags:   res.TopTags,
		Subtree:   res.Subtree.Name,
		Rankings:  map[string][]rankRow{},
	}
	for _, s := range res.Scores {
		out.Scores = append(out.Scores, scoreBody{Tag: s.Tag, CF: s.CF})
	}
	for name, ranking := range res.Rankings {
		rows := make([]rankRow, 0, len(ranking))
		for _, e := range ranking {
			rows = append(rows, rankRow{Tag: e.Tag, Rank: e.Rank})
		}
		out.Rankings[name] = rows
	}
	for _, c := range res.Candidates {
		out.Candidates = append(out.Candidates, candidateBody{Tag: c.Name, Count: c.Count})
	}
	return out
}

// apiError pairs a client-visible error with the HTTP status it maps to.
type apiError struct {
	status int
	err    error
}

// discoverOne runs one discover request through the cache and, on a miss,
// the full pipeline — the shared path behind /v1/discover and each document
// of /v1/discover/batch.
func (s server) discoverOne(req *request) (*discoverResponse, *apiError) {
	if (req.HTML == "") == (req.XML == "") {
		return nil, &apiError{http.StatusBadRequest,
			errors.New("exactly one of html or xml is required")}
	}
	mode, doc := "html", req.HTML
	if req.XML != "" {
		mode, doc = "xml", req.XML
	}
	var key [sha256.Size]byte
	if s.cache != nil {
		key = cacheKey(mode, doc, req.Ontology, req.SeparatorList)
		if resp, ok := s.cache.get(key); ok {
			return resp, nil
		}
	}
	ont, err := req.resolveOntology()
	if err != nil {
		return nil, &apiError{http.StatusBadRequest, err}
	}
	opts := s.pipelineOptions(ont, req.SeparatorList)
	var res *core.Result
	if mode == "html" {
		res, err = core.Discover(doc, opts)
	} else {
		res, err = core.DiscoverXML(doc, opts)
	}
	if err != nil {
		return nil, &apiError{http.StatusUnprocessableEntity, err}
	}
	resp := toDiscoverResponse(res)
	s.cache.put(key, resp)
	return resp, nil
}

func (s server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	resp, apiErr := s.discoverOne(req)
	if apiErr != nil {
		writeErr(w, apiErr.status, apiErr.err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// recordBody is one split record on the wire.
type recordBody struct {
	Text  string `json:"text"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

func (s server) handleRecords(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	if req.HTML == "" {
		writeErr(w, http.StatusBadRequest, errors.New("html is required"))
		return
	}
	ont, err := req.resolveOntology()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := core.Discover(req.HTML, s.pipelineOptions(ont, req.SeparatorList))
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	var records []recordBody
	for _, rec := range core.Split(req.HTML, res) {
		records = append(records, recordBody{Text: rec.Text, Start: rec.Start, End: rec.End})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"separator": res.Separator,
		"records":   records,
	})
}

func (s server) handleExtract(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	if req.HTML == "" {
		writeErr(w, http.StatusBadRequest, errors.New("html is required"))
		return
	}
	if req.Ontology == "" {
		writeErr(w, http.StatusBadRequest, errors.New("ontology is required for extraction"))
		return
	}
	ont, err := req.resolveOntology()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := core.Discover(req.HTML, s.pipelineOptions(ont, nil))
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	db, err := dbgen.Populate(ont, res)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"separator": res.Separator,
		"database":  db,
	})
}

func (s server) handleClassify(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	if req.HTML == "" || req.Ontology == "" {
		writeErr(w, http.StatusBadRequest, errors.New("html and ontology are required"))
		return
	}
	ont, err := req.resolveOntology()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := classify.Classify(req.HTML, ont)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":         res.Kind.String(),
		"estimate":     res.Estimate,
		"field_counts": res.FieldCounts,
		"fan_out":      res.FanOut,
		"candidates":   res.Candidates,
	})
}

func (s server) handleOntologies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"builtin":    ontology.BuiltinNames(),
		"heuristics": certainty.AllHeuristics,
	})
}
