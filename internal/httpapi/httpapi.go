// Package httpapi exposes the record-boundary pipeline as a JSON HTTP
// service: boundary discovery, record splitting, full extraction, and
// document classification. It is the deployment surface a crawler fleet
// would call; cmd/serve wires it to a listener.
//
// Endpoints (all POST bodies and responses are JSON):
//
//	POST /v1/discover  {html|xml, ontology?}     → separator, scores, rankings
//	POST /v1/discover/batch  {documents: [...]}   → per-document results, in order
//	POST /v1/discover/stream  NDJSON tasks        → NDJSON outcomes, streamed in order
//	POST /v1/records   {html, ontology?}          → cleaned record chunks
//	POST /v1/extract   {html, ontology}           → populated database
//	POST /v1/classify  {html, ontology}           → document kind + evidence
//	POST /v1/wrapper/learn  {samples, ontology?}  → reusable site wrapper
//	POST /v1/wrapper/apply  {wrapper, html}       → records (409 on drift)
//	GET  /v1/ontologies                           → built-in ontology names
//	GET  /healthz                                 → ok
//	GET  /metrics                                 → Prometheus text format
//	GET  /debug/vars                              → expvar JSON
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/certainty"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dbgen"
	"repro/internal/faultinject"
	"repro/internal/htmlparse"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/tagtree"
	"repro/internal/template"
)

// MaxBodyBytes bounds request bodies; 1998-era pages were tens of
// kilobytes, and even generous modern listings fit far below this.
const MaxBodyBytes = 8 << 20

// Config carries the service's observability sinks and serving-layer
// tuning. The zero value is valid: a nil Logger disables request logging, a
// nil Metrics disables metric collection (the /metrics endpoint then serves
// an empty exposition), a zero CacheSize disables the result cache, and a
// zero BatchWorkers sizes the batch pool to GOMAXPROCS.
type Config struct {
	// Logger receives one structured "request" record per served request.
	Logger *slog.Logger
	// Metrics collects HTTP middleware metrics and is threaded into the
	// pipeline via core.Options, so /metrics shows per-stage and
	// per-heuristic counters alongside the per-route HTTP series.
	Metrics *obs.Registry
	// CacheSize bounds the discovery result cache (entries). Repeated
	// /v1/discover (and batch) requests for an identical document and
	// options are answered from the cache; hits, misses, and evictions
	// surface as boundary_cache_* metrics. Zero or negative disables it.
	CacheSize int
	// CacheJournal, if non-empty, makes the result cache durable: puts and
	// evictions are appended to an NDJSON journal at this path (torn-tail
	// tolerant, compacting — see internal/journal) and replayed on startup,
	// so a restarted replica answers its first requests warm. Requires
	// CacheSize > 0 and the NewServer constructor (NewHandler has no error
	// path and ignores it).
	CacheJournal string
	// BatchWorkers bounds how many documents one /v1/discover/batch request
	// processes concurrently. Zero or negative selects GOMAXPROCS.
	BatchWorkers int
	// MaxInFlight bounds concurrently-processing /v1/ requests; excess
	// requests are shed with 429 + Retry-After (and counted in
	// boundary_requests_shed_total). Zero or negative disables shedding.
	MaxInFlight int
	// RequestTimeout bounds one /v1/ request's processing; an expired
	// request stops mid-pipeline and answers 503. Zero disables it.
	RequestTimeout time.Duration
	// Limits bounds per-document parse resources (document bytes beyond
	// the MaxBodyBytes envelope cap, tag-tree depth, node count); exceeded
	// limits answer 413/422. The zero value imposes no limits.
	Limits tagtree.Limits
	// Faults is the test-only fault-injection hook set threaded into the
	// pipeline (see internal/faultinject); nil in production.
	Faults *faultinject.Set
	// Traces enables distributed tracing: every request gets (or continues,
	// via its W3C traceparent header) a trace whose finished fragment is
	// published here, and GET /debug/traces serves the store. Nil disables
	// tracing.
	Traces *obs.TraceStore
	// Service names this process in trace fragments ("local-0", ...); empty
	// means "boundary".
	Service string
	// Templates, if non-nil, enables the learned-wrapper fast path: HTML
	// discover requests are fingerprinted before any parsing and served
	// straight from the store on a hit; misses learn the discovered
	// answer. The store also backs POST /v1/template/publish (cluster
	// warming), GET /v1/template/stats, and GET /v1/template/export (the
	// warmup state-transfer stream). See docs/WRAPPER.md.
	Templates *template.Store
	// Membership, if non-nil, mounts this node's gossip surface: POST
	// /v1/cluster/gossip (and /v1/cluster/join, its alias) exchange views,
	// GET /v1/cluster/members serves the member table. Membership routes
	// bypass load shedding and the request timeout so a saturated replica
	// keeps heartbeating. See docs/MEMBERSHIP.md.
	Membership *membership.Node
}

// server binds the handlers to one Config.
type server struct {
	cfg      Config
	cache    *resultCache
	inflight chan struct{} // nil when shedding is off; else a semaphore
}

// NewHandler returns the full service handler: the routing table wrapped in
// load shedding + request timeout (for /v1/ routes) and request-logging +
// metrics middleware, plus GET /metrics and GET /debug/vars. It has no
// error path, so it ignores Config.CacheJournal — durable callers use
// NewServer.
func NewHandler(cfg Config) http.Handler {
	cfg.CacheJournal = ""
	srv, _ := NewServer(cfg) // cannot fail without a journal
	return srv
}

// Server is the full service handler plus the resources it owns: with
// Config.CacheJournal set, Close compacts and closes the result-cache
// journal so the next start replays a minimal file.
type Server struct {
	http.Handler
	cache *resultCache
}

// Close flushes the server's durable state. Safe on a journal-less server.
func (s *Server) Close() error {
	return s.cache.close()
}

// NewServer is NewHandler with an error path: it opens (and replays) the
// result-cache journal when Config.CacheJournal is set, failing on a
// corrupt journal body rather than serving from a partial memory.
func NewServer(cfg Config) (*Server, error) {
	cache, err := newResultCache(cfg.CacheSize, cfg.CacheJournal, cfg.Metrics, cfg.Faults)
	if err != nil {
		return nil, err
	}
	s := server{cfg: cfg, cache: cache}
	if cfg.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInFlight)
	}
	mux := newMux(s)
	mux.Handle("GET /metrics", cfg.Metrics.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	var tracing *obs.Tracing
	if cfg.Traces != nil {
		mux.Handle("GET /debug/traces", cfg.Traces.Handler())
		tracing = &obs.Tracing{Store: cfg.Traces, Service: cfg.Service}
	}
	route := func(r *http.Request) string {
		_, pattern := mux.Handler(r)
		return pattern
	}
	// Shedding sits inside the observability middleware so shed requests
	// still show up in the request log and the per-route HTTP metrics.
	h := obs.Middleware(s.limit(mux), cfg.Logger, cfg.Metrics, route, tracing)
	return &Server{Handler: h, cache: cache}, nil
}

// limit wraps next with the serving-layer protections for /v1/ routes: a
// bounded in-flight semaphore that sheds excess load with 429 + Retry-After,
// and a per-request processing deadline. Non-API paths (/healthz, /metrics,
// /debug/...) bypass both so the service stays observable while saturated.
func (s server) limit(next http.Handler) http.Handler {
	if s.inflight == nil && s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// /v1/cluster/ is membership traffic: shedding or timing out a
		// heartbeat under load would read as a dead peer and flap the ring,
		// so it bypasses both protections like the non-API paths do.
		if !strings.HasPrefix(r.URL.Path, "/v1/") || strings.HasPrefix(r.URL.Path, "/v1/cluster/") {
			next.ServeHTTP(w, r)
			return
		}
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.cfg.Metrics.Counter("boundary_requests_shed_total",
					"Requests rejected with 429 because the in-flight limit was saturated.").Inc()
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests,
					fmt.Errorf("server is at its in-flight limit of %d requests; retry shortly", cap(s.inflight)))
				return
			}
		}
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// NewServeMux returns the bare routing table with no middleware and no
// observability endpoints — the pre-observability surface, kept for embedders
// that bring their own. Most callers want NewHandler.
func NewServeMux() *http.ServeMux {
	return newMux(server{})
}

func newMux(s server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/discover", s.handleDiscover)
	mux.HandleFunc("POST /v1/discover/batch", s.handleDiscoverBatch)
	mux.HandleFunc("POST /v1/discover/stream", s.handleDiscoverStream)
	mux.HandleFunc("POST /v1/records", s.handleRecords)
	mux.HandleFunc("POST /v1/extract", s.handleExtract)
	mux.HandleFunc("POST /v1/classify", s.handleClassify)
	mux.HandleFunc("GET /v1/ontologies", s.handleOntologies)
	registerWrapperRoutes(mux, s)
	registerTemplateRoutes(mux, s)
	registerClusterRoutes(mux, s)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// pipelineOptions threads the server's metrics, resource limits, fault
// hooks, and the request's live trace (if any, from ctx) into a discovery
// call, so heuristic stage spans land on the same trace as the HTTP span.
func (s server) pipelineOptions(ctx context.Context, ont *ontology.Ontology, separatorList []string) core.Options {
	return core.Options{
		Ontology:      ont,
		SeparatorList: separatorList,
		Trace:         obs.TraceFrom(ctx),
		Metrics:       s.cfg.Metrics,
		Limits:        s.cfg.Limits,
		Faults:        s.cfg.Faults,
	}
}

// request is the shared request envelope.
type request struct {
	// HTML is the document to process; XML is its XML-mode alternative
	// (exactly one must be set for discover; records/extract/classify are
	// HTML-only).
	HTML string `json:"html,omitempty"`
	XML  string `json:"xml,omitempty"`
	// Ontology is a built-in name ("obituary", "carad", "jobad", "course")
	// or full DSL source (detected by the presence of a newline).
	Ontology string `json:"ontology,omitempty"`
	// SeparatorList optionally overrides IT's identifiable-separator list.
	SeparatorList []string `json:"separator_list,omitempty"`
}

// errorBody is the uniform error response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers already sent; nothing useful to do on error
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decodeJSON parses a JSON body into v with the body limit applied,
// answering 400 on malformed input and 413 when the body exceeds
// MaxBodyBytes. Reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", maxErr.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// decode parses the shared request envelope.
func decode(w http.ResponseWriter, r *http.Request) (*request, bool) {
	var req request
	if !decodeJSON(w, r, &req) {
		return nil, false
	}
	return &req, true
}

// resolveOntology turns the envelope's ontology field into a parsed
// ontology; empty means nil (OM declines).
func (req *request) resolveOntology() (*ontology.Ontology, error) {
	if req.Ontology == "" {
		return nil, nil
	}
	if ont := ontology.Builtin(req.Ontology); ont != nil {
		return ont, nil
	}
	ont, err := ontology.Parse(req.Ontology)
	if err != nil {
		return nil, fmt.Errorf("ontology is neither built-in (%v) nor valid DSL: %w",
			ontology.BuiltinNames(), err)
	}
	return ont, nil
}

// discoverResponse mirrors core.Result in wire-friendly form.
type discoverResponse struct {
	Separator  string               `json:"separator"`
	TopTags    []string             `json:"top_tags"`
	Scores     []scoreBody          `json:"scores"`
	Rankings   map[string][]rankRow `json:"rankings"`
	Candidates []candidateBody      `json:"candidates"`
	Subtree    string               `json:"subtree"`
	// Degraded and FailedHeuristics surface isolated heuristic failures:
	// the answer was computed from the surviving heuristics only.
	Degraded         bool     `json:"degraded,omitempty"`
	FailedHeuristics []string `json:"failed_heuristics,omitempty"`
	// Explain carries per-heuristic certainty evidence; present only when
	// the request asked for it with ?explain=1.
	Explain *core.Explanation `json:"explain,omitempty"`
}

type scoreBody struct {
	Tag string  `json:"tag"`
	CF  float64 `json:"cf"`
}

type rankRow struct {
	Tag  string `json:"tag"`
	Rank int    `json:"rank"`
}

type candidateBody struct {
	Tag   string `json:"tag"`
	Count int    `json:"count"`
}

func toDiscoverResponse(res *core.Result) *discoverResponse {
	out := &discoverResponse{
		Separator:        res.Separator,
		TopTags:          res.TopTags,
		Subtree:          res.Subtree.Name,
		Rankings:         map[string][]rankRow{},
		Degraded:         res.Degraded,
		FailedHeuristics: res.FailedHeuristics,
	}
	for _, s := range res.Scores {
		out.Scores = append(out.Scores, scoreBody{Tag: s.Tag, CF: s.CF})
	}
	for name, ranking := range res.Rankings {
		rows := make([]rankRow, 0, len(ranking))
		for _, e := range ranking {
			rows = append(rows, rankRow{Tag: e.Tag, Rank: e.Rank})
		}
		out.Rankings[name] = rows
	}
	for _, c := range res.Candidates {
		out.Candidates = append(out.Candidates, candidateBody{Tag: c.Name, Count: c.Count})
	}
	return out
}

// apiError pairs a client-visible error with the HTTP status it maps to.
type apiError struct {
	status int
	err    error
}

// ctxRelated reports whether the error came from an expired or canceled
// request context (as opposed to a property of the document itself).
func ctxRelated(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// pipelineError maps a discovery-pipeline error to its HTTP status:
// resource limits are the client's fault (413 for size, 422 for structure),
// an expired deadline is the server saying "too slow right now" (503), and
// everything else — ErrNoCandidates included — stays the long-standing 422.
func pipelineError(err error) *apiError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{http.StatusServiceUnavailable,
			fmt.Errorf("processing deadline exceeded: %w", err)}
	case errors.Is(err, context.Canceled):
		// The client hung up; the status is written into the void, but a
		// non-2xx keeps logs and metrics honest.
		return &apiError{http.StatusServiceUnavailable,
			fmt.Errorf("request canceled: %w", err)}
	case errors.Is(err, htmlparse.ErrTooLarge):
		return &apiError{http.StatusRequestEntityTooLarge, err}
	case errors.Is(err, tagtree.ErrTooDeep), errors.Is(err, tagtree.ErrTooManyNodes):
		return &apiError{http.StatusUnprocessableEntity, err}
	default:
		return &apiError{http.StatusUnprocessableEntity, err}
	}
}

// discoverOne runs one discover request through the cache and, on a miss,
// the full pipeline — the shared path behind /v1/discover and each document
// of /v1/discover/batch. Concurrent identical requests are deduplicated:
// one leader computes while followers wait on its result (see
// resultCache.join), so a thundering herd for a hot document costs one
// pipeline run instead of N.
func (s server) discoverOne(ctx context.Context, req *request) (*discoverResponse, *apiError) {
	if (req.HTML == "") == (req.XML == "") {
		return nil, &apiError{http.StatusBadRequest,
			errors.New("exactly one of html or xml is required")}
	}
	mode, doc := "html", req.HTML
	if req.XML != "" {
		mode, doc = "xml", req.XML
	}
	if s.cache == nil {
		return s.computeDiscover(ctx, mode, doc, req)
	}
	key := RequestFingerprint(mode, doc, req.Ontology, req.SeparatorList)
	for {
		if resp, ok := s.cache.get(key); ok {
			obs.TraceFrom(ctx).Add("cache/hit", 0)
			return resp, nil
		}
		call, leader := s.cache.join(key)
		if leader {
			resp, apiErr := s.computeDiscover(ctx, mode, doc, req)
			s.cache.complete(key, call, resp, apiErr)
			return resp, apiErr
		}
		s.cache.metrics.Counter("boundary_cache_inflight_dedup_total",
			"Discovery requests answered by waiting on an identical in-flight computation.").Inc()
		select {
		case <-call.done:
			if call.err != nil && ctxRelated(call.err.err) && ctx.Err() == nil {
				// The leader's own context died, not ours: its failure
				// says nothing about the document. Take another lap —
				// cache check, then leadership election.
				continue
			}
			return call.resp, call.err
		case <-ctx.Done():
			return nil, pipelineError(ctx.Err())
		}
	}
}

// computeDiscover is the cache-miss path: resolve the ontology and run the
// full pipeline under the request context. With a wrapper store configured,
// HTML documents first try the template fast path — a fingerprint lookup
// that skips parsing and heuristics entirely on a hit (see docs/WRAPPER.md);
// XML documents use the tree-level fast path inside core instead, because
// the raw-document scanner speaks only HTML's grammar.
func (s server) computeDiscover(ctx context.Context, mode, doc string, req *request) (*discoverResponse, *apiError) {
	if s.cfg.Templates != nil && mode == "html" {
		return s.computeDiscoverTemplated(ctx, doc, req)
	}
	arena := tagtree.AcquireArena()
	defer arena.Release()
	res, _, apiErr := s.runDiscover(ctx, mode, doc, req, true, arena)
	if apiErr != nil {
		return nil, apiErr
	}
	return toDiscoverResponse(res), nil
}

// computeDiscoverTemplated is the document-level template fast path for HTML
// discover: fingerprint the raw bytes, serve a store hit without ever
// building the tag tree, and learn the full-pipeline answer on a miss. The
// occasional hit is spot-checked — full discovery runs anyway and divergence
// evicts and relearns the entry — so a drifted wrapper cannot serve stale
// answers forever. runDiscover is called with the core-level fast path
// disabled: the lookup already happened here, and double-counting misses (or
// re-hitting the entry this request is about to verify) would corrupt both
// the metrics and the spot-check.
func (s server) computeDiscoverTemplated(ctx context.Context, doc string, req *request) (*discoverResponse, *apiError) {
	store := s.cfg.Templates
	start := time.Now()
	e, key, ok := store.LookupDoc(doc, template.Salt("html", req.Ontology, req.SeparatorList))
	if ok && !store.SpotCheck() {
		obs.TraceFrom(ctx).Add("template/hit", time.Since(start),
			"separator", e.Separator, "key", e.Key)
		return responseFromEntry(e), nil
	}
	arena := tagtree.AcquireArena()
	defer arena.Release()
	res, _, apiErr := s.runDiscover(ctx, "html", doc, req, false, arena)
	if apiErr != nil {
		return nil, apiErr
	}
	// Degraded answers are never learned: the result came from surviving
	// heuristics only (same completeness rule as the result cache).
	if !res.Degraded {
		fresh := core.NewTemplateEntry(key, res)
		if ok { // this was a spot-checked hit
			if e.Equal(fresh) {
				store.ReportSpotCheck("ok")
			} else {
				store.ReportSpotCheck("divergent")
				store.ReportDrift(key, "divergent")
			}
		}
		_ = store.Put(fresh)
	}
	return toDiscoverResponse(res), nil
}

// runDiscover runs the full pipeline and also returns the options it ran
// under, for callers (the explain path) that need the certainty table and
// combination rule that produced the result. templated enables core's
// tree-level template fast path; pass false when the caller already did its
// own store lookup (the document-level path) or must observe the real
// heuristics (explain, spot-checks). arena, when non-nil, puts the run on
// the byte-level hot path; the caller owns its lifetime and must not release
// it until it is done with the returned Result (which retains arena-owned
// tree nodes — see docs/PERFORMANCE.md).
func (s server) runDiscover(ctx context.Context, mode, doc string, req *request, templated bool, arena *tagtree.Arena) (*core.Result, core.Options, *apiError) {
	if s.cfg.Faults != nil {
		if err := s.cfg.Faults.FireCtx(ctx, "httpapi/discover"); err != nil {
			return nil, core.Options{}, pipelineError(err)
		}
	}
	ont, err := req.resolveOntology()
	if err != nil {
		return nil, core.Options{}, &apiError{http.StatusBadRequest, err}
	}
	opts := s.pipelineOptions(ctx, ont, req.SeparatorList)
	opts.Arena = arena
	if templated {
		s.templatedOptions(&opts, mode, req.Ontology, req.SeparatorList)
	}
	var res *core.Result
	if mode == "html" {
		res, err = core.DiscoverContext(ctx, doc, opts)
	} else {
		res, err = core.DiscoverXMLContext(ctx, doc, opts)
	}
	if err != nil {
		return nil, opts, pipelineError(err)
	}
	return res, opts, nil
}

// templatedOptions arms opts with the server's wrapper store and the salt
// binding store keys to this request's answer-changing options — the same
// fields RequestFingerprint hashes, minus the document.
func (s server) templatedOptions(opts *core.Options, mode, ontologySrc string, separatorList []string) {
	if s.cfg.Templates == nil {
		return
	}
	opts.Templates = s.cfg.Templates
	opts.TemplateSalt = template.Salt(mode, ontologySrc, separatorList)
}

func (s server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("explain") == "1" {
		s.handleDiscoverExplain(w, r, req)
		return
	}
	resp, apiErr := s.discoverOne(r.Context(), req)
	if apiErr != nil {
		writeErr(w, apiErr.status, apiErr.err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDiscoverExplain is /v1/discover?explain=1: the same discovery, with
// each heuristic's certainty, decline reason, and the combination arithmetic
// attached to the response and the request's trace. It bypasses the result
// cache and the in-flight dedup on purpose — the plain path must stay
// byte-identical across cluster and single-node serving, and an explain
// response cached for a plain request (or vice versa) would break that.
func (s server) handleDiscoverExplain(w http.ResponseWriter, r *http.Request, req *request) {
	if (req.HTML == "") == (req.XML == "") {
		writeErr(w, http.StatusBadRequest,
			errors.New("exactly one of html or xml is required"))
		return
	}
	mode, doc := "html", req.HTML
	if req.XML != "" {
		mode, doc = "xml", req.XML
	}
	// templated=false: an explanation must come from the real heuristics,
	// never from a stored wrapper.
	arena := tagtree.AcquireArena()
	defer arena.Release()
	res, opts, apiErr := s.runDiscover(r.Context(), mode, doc, req, false, arena)
	if apiErr != nil {
		writeErr(w, apiErr.status, apiErr.err)
		return
	}
	resp := toDiscoverResponse(res)
	resp.Explain = core.NewExplanation(res, opts)
	obs.TraceFrom(r.Context()).Add("explain", 0, resp.Explain.TraceAttrs()...)
	writeJSON(w, http.StatusOK, resp)
}

// recordBody is one split record on the wire.
type recordBody struct {
	Text  string `json:"text"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

func (s server) handleRecords(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	if req.HTML == "" {
		writeErr(w, http.StatusBadRequest, errors.New("html is required"))
		return
	}
	ont, err := req.resolveOntology()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ropts := s.pipelineOptions(r.Context(), ont, req.SeparatorList)
	arena := tagtree.AcquireArena()
	defer arena.Release()
	ropts.Arena = arena
	s.templatedOptions(&ropts, "html", req.Ontology, req.SeparatorList)
	res, err := core.DiscoverContext(r.Context(), req.HTML, ropts)
	if err != nil {
		apiErr := pipelineError(err)
		writeErr(w, apiErr.status, apiErr.err)
		return
	}
	var records []recordBody
	for _, rec := range core.Split(req.HTML, res) {
		records = append(records, recordBody{Text: rec.Text, Start: rec.Start, End: rec.End})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"separator": res.Separator,
		"records":   records,
	})
}

func (s server) handleExtract(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	if req.HTML == "" {
		writeErr(w, http.StatusBadRequest, errors.New("html is required"))
		return
	}
	if req.Ontology == "" {
		writeErr(w, http.StatusBadRequest, errors.New("ontology is required for extraction"))
		return
	}
	ont, err := req.resolveOntology()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	xopts := s.pipelineOptions(r.Context(), ont, nil)
	arena := tagtree.AcquireArena()
	defer arena.Release()
	xopts.Arena = arena
	s.templatedOptions(&xopts, "html", req.Ontology, nil)
	res, err := core.DiscoverContext(r.Context(), req.HTML, xopts)
	if err != nil {
		apiErr := pipelineError(err)
		writeErr(w, apiErr.status, apiErr.err)
		return
	}
	db, err := dbgen.Populate(ont, res)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"separator": res.Separator,
		"database":  db,
	})
}

func (s server) handleClassify(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	if req.HTML == "" || req.Ontology == "" {
		writeErr(w, http.StatusBadRequest, errors.New("html and ontology are required"))
		return
	}
	ont, err := req.resolveOntology()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := classify.Classify(req.HTML, ont)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":         res.Kind.String(),
		"estimate":     res.Estimate,
		"field_counts": res.FieldCounts,
		"fan_out":      res.FanOut,
		"candidates":   res.Candidates,
	})
}

func (s server) handleOntologies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"builtin":    ontology.BuiltinNames(),
		"heuristics": certainty.AllHeuristics,
	})
}
