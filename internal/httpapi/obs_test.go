package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/paperdoc"
)

// newObservedServer runs the full NewHandler surface (middleware + /metrics
// + /debug/vars) with a fresh registry and a captured log stream.
func newObservedServer(t *testing.T) (*httptest.Server, *obs.Registry, *bytes.Buffer) {
	t.Helper()
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	h := NewHandler(Config{
		Logger:  slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Metrics: reg,
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, reg, &logBuf
}

func postDiscover(t *testing.T, srv *httptest.Server) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"html": paperdoc.Figure2, "ontology": "obituary"})
	resp, err := http.Post(srv.URL+"/v1/discover", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestMetricsEndpoint serves one /v1/discover request and asserts /metrics
// reflects it: the per-route HTTP series and the pipeline's per-stage and
// per-heuristic counters, in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	srv, _, _ := newObservedServer(t)
	if resp := postDiscover(t, srv); resp.StatusCode != http.StatusOK {
		t.Fatalf("discover status = %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := string(body)
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200",method="POST",route="POST /v1/discover"} 1`,
		`http_request_duration_seconds_bucket{route="POST /v1/discover",le="+Inf"} 1`,
		`http_request_duration_seconds_count{route="POST /v1/discover"} 1`,
		`http_request_body_bytes_total{route="POST /v1/discover"}`,
		"# TYPE boundary_stage_duration_seconds histogram",
		`boundary_stage_duration_seconds_count{stage="parse"} 1`,
		`boundary_stage_duration_seconds_count{stage="combine"} 1`,
		`boundary_heuristic_runs_total{heuristic="OM"} 1`,
		`boundary_documents_total{outcome="ok"} 1`,
		"http_requests_in_flight",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("/metrics missing %q:\n%s", want, got)
		}
	}
}

// TestRequestIDHeader: every response carries X-Request-ID, and a
// caller-supplied ID is propagated back and into the request log.
func TestRequestIDHeader(t *testing.T) {
	srv, _, logBuf := newObservedServer(t)

	if resp := postDiscover(t, srv); len(resp.Header.Get(obs.RequestIDHeader)) != 16 {
		t.Errorf("generated id = %q, want 16 hex chars", resp.Header.Get(obs.RequestIDHeader))
	}

	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "trace-me-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "trace-me-123" {
		t.Errorf("propagated id = %q, want trace-me-123", got)
	}
	if !strings.Contains(logBuf.String(), `"request_id":"trace-me-123"`) {
		t.Errorf("request log missing the supplied id:\n%s", logBuf.String())
	}
}

// TestErrorMetrics: a 4xx response increments the error counter.
func TestErrorMetrics(t *testing.T) {
	srv, reg, _ := newObservedServer(t)
	resp, err := http.Post(srv.URL+"/v1/discover", "application/json",
		strings.NewReader(`{"bogus": true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `http_request_errors_total{route="POST /v1/discover"} 1`) {
		t.Errorf("error counter missing:\n%s", b.String())
	}
}

// TestDebugVars: the expvar surface is mounted and serves JSON.
func TestDebugVars(t *testing.T) {
	srv, _, _ := newObservedServer(t)
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := v["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}
}

// TestUnmatchedRoute: 404s are labeled "unmatched", keeping route
// cardinality bounded against URL scanning.
func TestUnmatchedRoute(t *testing.T) {
	srv, reg, _ := newObservedServer(t)
	resp, err := http.Get(srv.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `http_requests_total{code="404",method="GET",route="unmatched"} 1`) {
		t.Errorf("unmatched route not labeled:\n%s", b.String())
	}
}
