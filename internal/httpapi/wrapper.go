package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/wrapper"
)

// Wrapper endpoints: the learn-once / apply-cheaply workflow over HTTP.
//
//	POST /v1/wrapper/learn {samples: [html...], ontology?}
//	     → {wrapper: <opaque JSON>, separator, confidence, agreement}
//	POST /v1/wrapper/apply {wrapper: <from learn>, html, ontology?}
//	     → {records: [...]} or 409 on drift

type learnRequest struct {
	Samples  []string `json:"samples"`
	Ontology string   `json:"ontology,omitempty"`
}

type applyRequest struct {
	Wrapper  json.RawMessage `json:"wrapper"`
	HTML     string          `json:"html"`
	Ontology string          `json:"ontology,omitempty"`
}

func registerWrapperRoutes(mux *http.ServeMux, s server) {
	mux.HandleFunc("POST /v1/wrapper/learn", s.handleWrapperLearn)
	mux.HandleFunc("POST /v1/wrapper/apply", s.handleWrapperApply)
}

func (s server) handleWrapperLearn(w http.ResponseWriter, r *http.Request) {
	var req learnRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Samples) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("samples are required"))
		return
	}
	ont, err := (&request{Ontology: req.Ontology}).resolveOntology()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	learned, err := wrapper.Learn(req.Samples, ont)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	var buf bytes.Buffer
	if err := learned.Save(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"wrapper":    json.RawMessage(buf.Bytes()),
		"separator":  learned.Separator,
		"confidence": learned.Confidence,
		"agreement":  learned.Agreement,
	})
}

func (s server) handleWrapperApply(w http.ResponseWriter, r *http.Request) {
	var req applyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Wrapper) == 0 || req.HTML == "" {
		writeErr(w, http.StatusBadRequest, errors.New("wrapper and html are required"))
		return
	}
	ont, err := (&request{Ontology: req.Ontology}).resolveOntology()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	learned, err := wrapper.LoadWithOntology(bytes.NewReader(req.Wrapper), ont)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	records, err := learned.Apply(req.HTML)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, wrapper.ErrDrift) {
			status = http.StatusConflict
		}
		writeErr(w, status, err)
		return
	}
	var out []recordBody
	for _, rec := range records {
		out = append(out, recordBody{Text: rec.Text, Start: rec.Start, End: rec.End})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"separator": learned.Separator,
		"records":   out,
	})
}
