package httpapi

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package's test run if handlers leak goroutines — batch
// worker pools, singleflight followers, and shed requests must all unwind.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
