package httpapi

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"
)

// MaxBatchDocuments bounds one batch request. The body-size limit already
// caps total bytes; this caps scheduling overhead from degenerate requests
// with thousands of tiny documents.
const MaxBatchDocuments = 256

// batchRequest is the /v1/discover/batch envelope: each document is a full
// discover request, so per-document ontologies and separator lists work.
type batchRequest struct {
	Documents []request `json:"documents"`
}

// batchItem is one per-document outcome, in input order. Exactly one of the
// embedded result fields or Error is populated.
type batchItem struct {
	*discoverResponse
	// Error carries the per-document failure; the batch itself still
	// answers 200 so one bad document cannot mask the others' results.
	Error string `json:"error,omitempty"`
	// Code machine-tags the failure. "not_attempted" marks documents the
	// batch never dispatched because the request's context was canceled or
	// timed out mid-batch; clients should resubmit only those.
	Code string `json:"code,omitempty"`
}

// codeNotAttempted marks batch documents skipped because the request ended
// before they were dispatched.
const codeNotAttempted = "not_attempted"

// handleDiscoverBatch fans a batch of documents across a bounded worker
// pool (the EvaluateAllParallel shape: indexed tasks, results slotted by
// position) and answers per-document results in input order. Each document
// takes the same cache-then-pipeline path as /v1/discover. When the request
// context ends mid-batch, dispatch stops immediately: already-running
// documents finish (each sees the canceled context and fails fast), and
// undispatched ones come back with Code "not_attempted".
func (s server) handleDiscoverBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		s.cfg.Metrics.Histogram("boundary_batch_duration_seconds",
			"Wall-clock duration of one /v1/discover/batch request.", nil).
			Observe(time.Since(start).Seconds())
	}()
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Documents) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("documents must be non-empty"))
		return
	}
	if len(req.Documents) > MaxBatchDocuments {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d documents, limit is %d", len(req.Documents), MaxBatchDocuments))
		return
	}

	workers := s.cfg.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Documents) {
		workers = len(req.Documents)
	}

	ctx := r.Context()
	attempted := make([]bool, len(req.Documents))
	items := make([]batchItem, len(req.Documents))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case i, ok := <-next:
					if !ok {
						return
					}
					attempted[i] = true
					resp, apiErr := s.discoverOne(ctx, &req.Documents[i])
					if apiErr != nil {
						items[i] = batchItem{Error: apiErr.err.Error()}
					} else {
						items[i] = batchItem{discoverResponse: resp}
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}
dispatch:
	for i := range req.Documents {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	for i := range items {
		if !attempted[i] {
			items[i] = batchItem{
				Error: "batch request ended before this document was attempted",
				Code:  codeNotAttempted,
			}
		}
	}

	for _, item := range items {
		outcome := "ok"
		switch {
		case item.Code == codeNotAttempted:
			outcome = codeNotAttempted
		case item.Error != "":
			outcome = "error"
		}
		s.cfg.Metrics.Counter("boundary_batch_documents_total",
			"Documents processed by the batch endpoint, by outcome.",
			"outcome", outcome).Inc()
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": items})
}
