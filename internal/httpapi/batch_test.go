package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/paperdoc"
)

// batchResults posts a batch request and decodes the results array.
func batchResults(t *testing.T, documents []map[string]any) (*http.Response, []map[string]json.RawMessage) {
	t.Helper()
	srv, _ := cachedServer(t, 16)
	resp, body := post(t, srv, "/v1/discover/batch", map[string]any{"documents": documents})
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var results []map[string]json.RawMessage
	if err := json.Unmarshal(body["results"], &results); err != nil {
		t.Fatalf("decode results: %v", err)
	}
	return resp, results
}

func TestBatchEndpointOrderPreserved(t *testing.T) {
	// Distinct separators per document prove results land in input order.
	docs := []map[string]any{
		{"html": "<div><hr><b>A</b> one<hr><b>B</b> two<hr><b>C</b> three</div>"},
		{"html": paperdoc.Figure2, "ontology": "obituary"},
		{"xml": "<feed><entry>a b</entry><entry>c d</entry><entry>e f</entry></feed>"},
	}
	resp, results := batchResults(t, docs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(results) != len(docs) {
		t.Fatalf("results = %d, want %d", len(results), len(docs))
	}
	for i, want := range []string{"hr", "hr", "entry"} {
		if got := str(t, results[i]["separator"]); got != want {
			t.Errorf("result %d separator = %q, want %q", i, got, want)
		}
	}
}

func TestBatchPerDocumentErrors(t *testing.T) {
	docs := []map[string]any{
		{"html": "<div><hr><b>A</b> one<hr><b>B</b> two<hr><b>C</b> three</div>"},
		{"html": "plain text, no candidates"},
		{}, // neither html nor xml
	}
	resp, results := batchResults(t, docs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with failing documents must still answer 200, got %d", resp.StatusCode)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if _, hasErr := results[0]["error"]; hasErr {
		t.Errorf("result 0 unexpectedly failed: %s", results[0]["error"])
	}
	for i, wantFrag := range map[int]string{1: "candidate", 2: "exactly one"} {
		raw, ok := results[i]["error"]
		if !ok {
			t.Errorf("result %d should carry an error", i)
			continue
		}
		if msg := str(t, raw); !strings.Contains(msg, wantFrag) {
			t.Errorf("result %d error = %q, want fragment %q", i, msg, wantFrag)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	srv, _ := cachedServer(t, 4)
	if resp, _ := post(t, srv, "/v1/discover/batch", map[string]any{"documents": []any{}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", resp.StatusCode)
	}
	over := make([]map[string]any, MaxBatchDocuments+1)
	for i := range over {
		over[i] = map[string]any{"html": "<div><p>x</p></div>"}
	}
	if resp, body := post(t, srv, "/v1/discover/batch", map[string]any{"documents": over}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400 (%s)", resp.StatusCode, body["error"])
	}
}

// TestBatchSharesCache: a batch full of one repeated document computes it
// once and serves the rest from the result cache. One worker keeps the
// miss count deterministic (concurrent workers could each miss the first
// lookup before any of them stores the entry).
func TestBatchSharesCache(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewHandler(Config{Metrics: reg, CacheSize: 8, BatchWorkers: 1}))
	t.Cleanup(srv.Close)
	doc := map[string]any{"html": paperdoc.Figure2, "ontology": "obituary"}
	docs := []map[string]any{doc, doc, doc, doc}
	resp, body := post(t, srv, "/v1/discover/batch", map[string]any{"documents": docs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body["error"])
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, "boundary_cache_misses_total 1") {
		t.Errorf("want exactly one miss across the batch; metrics:\n%s", grepLines(got, "boundary_cache"))
	}
	if !strings.Contains(got, "boundary_batch_documents_total{outcome=\"ok\"} 4") {
		t.Errorf("want 4 ok batch documents; metrics:\n%s", grepLines(got, "boundary_batch"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func TestBatchSingleDocumentMatchesDiscover(t *testing.T) {
	srv, _ := cachedServer(t, 4)
	doc := map[string]any{"html": paperdoc.Figure2, "ontology": "obituary"}
	_, single := post(t, srv, "/v1/discover", doc)
	resp, body := post(t, srv, "/v1/discover/batch", map[string]any{"documents": []map[string]any{doc}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var results []map[string]json.RawMessage
	if err := json.Unmarshal(body["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	for _, field := range []string{"separator", "top_tags", "scores", "candidates", "subtree"} {
		if got, want := compact(t, results[0][field]), compact(t, single[field]); got != want {
			t.Errorf("batch %s = %s, discover = %s", field, got, want)
		}
	}
}

// compact strips encoding whitespace so values can be compared regardless of
// how deeply the encoder indented them.
func compact(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var b bytes.Buffer
	if err := json.Compact(&b, raw); err != nil {
		t.Fatalf("compact %s: %v", raw, err)
	}
	return b.String()
}
