package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/membership"
	"repro/internal/template"
)

func templateTestEntry(t *testing.T, doc string) *template.Entry {
	t.Helper()
	key := template.MakeKey(template.FingerprintDoc(doc), template.Salt("html", "", nil))
	return &template.Entry{
		Key:       key.String(),
		Separator: "hr",
		TopTags:   []string{"hr"},
		Scores:    []template.Score{{Tag: "hr", CF: 0.95}},
		Rankings:  map[string][]template.RankEntry{"OM": {{Tag: "hr", Rank: 1}}},
		Subtree:   "body",
		Certainty: 0.95,
	}
}

func TestTemplateExportStreamsStore(t *testing.T) {
	store, err := template.Open(template.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	want := map[string]bool{}
	for _, doc := range []string{
		"<html><body><hr><hr></body></html>",
		"<html><body><p><p><p></body></html>",
	} {
		e := templateTestEntry(t, doc)
		if err := store.Put(e); err != nil {
			t.Fatal(err)
		}
		want[e.Key] = true
	}

	h := NewHandler(Config{Templates: store})
	req := httptest.NewRequest(http.MethodGet, template.ExportPath, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(w.Body)
	got := 0
	for sc.Scan() {
		var e template.Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d is not a JSON entry: %v", got+1, err)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("exported entry %s invalid: %v", e.Key, err)
		}
		if !want[e.Key] {
			t.Fatalf("exported unexpected entry %s", e.Key)
		}
		got++
	}
	if got != len(want) {
		t.Fatalf("exported %d entries, want %d", got, len(want))
	}
}

func TestTemplateExportWithoutStoreAnswers503(t *testing.T) {
	h := NewHandler(Config{})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, template.ExportPath, nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
}

// TestClusterGossipOverHTTP runs the real join flow over the wire: a seed
// node mounted on an httptest server, a joiner gossiping to it through
// HTTPTransport, and the member table served at /v1/cluster/members.
func TestClusterGossipOverHTTP(t *testing.T) {
	transport := &membership.HTTPTransport{Client: &http.Client{Timeout: 2 * time.Second}}

	seedNode, err := membership.New(membership.Config{
		Name: "seed", Addr: "seed-addr", // rewritten below once the listener exists
		Interval:  50 * time.Millisecond,
		Transport: transport,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seedNode.Close()
	seedSrv := httptest.NewServer(NewHandler(Config{Membership: seedNode}))
	defer seedSrv.Close()

	joiner, err := membership.New(membership.Config{
		Name: "joiner", Addr: "joiner-addr",
		Seeds:     []string{seedSrv.URL},
		Interval:  50 * time.Millisecond,
		Transport: transport,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if err := joiner.Join(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Both sides now know both members.
	if got := len(joiner.Members()); got != 2 {
		t.Fatalf("joiner knows %d members, want 2", got)
	}
	resp, err := http.Get(seedSrv.URL + "/v1/cluster/members")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("members status %d", resp.StatusCode)
	}
	var body struct {
		Digest  string              `json:"digest"`
		Members []membership.Member `json:"members"`
		Serving []membership.Member `json:"serving"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Members) != 2 || len(body.Serving) != 2 {
		t.Fatalf("member table %d/%d entries, want 2/2", len(body.Members), len(body.Serving))
	}
	names := []string{body.Members[0].Name, body.Members[1].Name}
	if names[0] != "joiner" || names[1] != "seed" {
		t.Fatalf("member names %v, want sorted [joiner seed]", names)
	}
	if body.Digest == "" {
		t.Fatal("member table carries no digest")
	}
}

func TestClusterRoutesWithoutMembershipAnswer503(t *testing.T) {
	h := NewHandler(Config{})
	for _, probe := range []struct{ method, path, body string }{
		{http.MethodPost, membership.GossipPath, `{"from":"x"}`},
		{http.MethodPost, membership.JoinPath, `{"from":"x"}`},
		{http.MethodGet, "/v1/cluster/members", ""},
	} {
		req := httptest.NewRequest(probe.method, probe.path, strings.NewReader(probe.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s: status %d, want 503", probe.method, probe.path, w.Code)
		}
	}
}

// TestClusterGossipBypassesShedding pins the load-shed exemption: with the
// in-flight limit saturated, /v1/discover sheds with 429 but a gossip
// heartbeat still answers 200 — load alone must never read as a dead peer.
func TestClusterGossipBypassesShedding(t *testing.T) {
	node, err := membership.New(membership.Config{
		Name: "n", Addr: "a",
		Transport: &membership.HTTPTransport{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	faults := faultinject.New()
	faults.Inject("httpapi/discover", faultinject.Fault{Delay: time.Second, Times: 1})
	h := NewHandler(Config{Membership: node, MaxInFlight: 1, Faults: faults})

	// Saturate the single in-flight slot; the hook fires after the
	// semaphore is acquired, so one firing means the slot is held.
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/discover",
			strings.NewReader(`{"html":"<html><body><hr><hr></body></html>"}`)))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for faults.Fired("httpapi/discover") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never acquired the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/discover",
		strings.NewReader(`{"html":"<p>shed me</p>"}`)))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("discover under saturation: status %d, want 429", w.Code)
	}

	msg, _ := json.Marshal(membership.Message{From: "peer"})
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, membership.GossipPath, strings.NewReader(string(msg))))
	if w.Code != http.StatusOK {
		t.Fatalf("gossip under saturation: status %d, want 200", w.Code)
	}

	<-done
}
