package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/paperdoc"
)

// cachedServer boots the full handler (middleware + metrics) with the
// result cache enabled.
func cachedServer(t *testing.T, cacheSize int) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewHandler(Config{Metrics: reg, CacheSize: cacheSize}))
	t.Cleanup(srv.Close)
	return srv, reg
}

func metricValue(t *testing.T, reg *obs.Registry, line string) bool {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return strings.Contains(b.String(), line)
}

func TestDiscoverServedFromCache(t *testing.T) {
	srv, reg := cachedServer(t, 8)
	body := map[string]any{"html": paperdoc.Figure2, "ontology": "obituary"}

	var first, second map[string]json.RawMessage
	for i, out := range []*map[string]json.RawMessage{&first, &second} {
		resp, decoded := post(t, srv, "/v1/discover", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, resp.StatusCode)
		}
		*out = decoded
	}
	if str(t, first["separator"]) != "hr" || str(t, second["separator"]) != "hr" {
		t.Fatalf("separators = %s, %s", first["separator"], second["separator"])
	}
	if !bytes.Equal(first["scores"], second["scores"]) {
		t.Error("cached response differs from computed response")
	}
	if !metricValue(t, reg, "boundary_cache_hits_total 1") {
		t.Error("second identical request did not hit the cache")
	}
	if !metricValue(t, reg, "boundary_cache_misses_total 1") {
		t.Error("first request should be the only miss")
	}
	if !metricValue(t, reg, "boundary_cache_entries 1") {
		t.Error("entry gauge should be 1")
	}
}

// TestCacheKeyDiscriminatesOptions: same document but different options must
// not share a cache slot.
func TestCacheKeyDiscriminatesOptions(t *testing.T) {
	srv, reg := cachedServer(t, 8)
	doc := "<div><hr><b>A</b> one<hr><b>B</b> two<hr><b>C</b> three</div>"
	bodies := []map[string]any{
		{"html": doc},
		{"html": doc, "ontology": "obituary"},
		{"html": doc, "separator_list": []string{"b"}},
		{"xml": doc},
	}
	for i, body := range bodies {
		if resp, decoded := post(t, srv, "/v1/discover", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("variant %d: status %d: %s", i, resp.StatusCode, decoded["error"])
		}
	}
	if !metricValue(t, reg, fmt.Sprintf("boundary_cache_misses_total %d", len(bodies))) {
		t.Error("every distinct option set should miss")
	}
	if metricValue(t, reg, "boundary_cache_hits_total") {
		t.Error("no variant should hit another's entry")
	}
}

func TestCacheEviction(t *testing.T) {
	srv, reg := cachedServer(t, 1)
	for i := 0; i < 3; i++ {
		doc := fmt.Sprintf("<div><hr><b>A%d</b> one<hr><b>B</b> two<hr></div>", i)
		if resp, decoded := post(t, srv, "/v1/discover", map[string]any{"html": doc}); resp.StatusCode != 200 {
			t.Fatalf("doc %d: status %d: %s", i, resp.StatusCode, decoded["error"])
		}
	}
	if !metricValue(t, reg, "boundary_cache_evictions_total 2") {
		t.Error("capacity-1 cache should have evicted twice")
	}
	if !metricValue(t, reg, "boundary_cache_entries 1") {
		t.Error("entry gauge should stay at capacity")
	}
}

// TestCacheConcurrentDiscover hammers one cached document from many
// goroutines — with -race this exercises the LRU and metric paths under
// concurrent discover requests.
func TestCacheConcurrentDiscover(t *testing.T) {
	srv, _ := cachedServer(t, 8)
	data, err := json.Marshal(map[string]any{"html": paperdoc.Figure2, "ontology": "obituary"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(srv.URL+"/v1/discover", "application/json", bytes.NewReader(data))
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"separator": "hr"`)) {
					t.Errorf("status %d body %.120s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// postJSONRaw posts body and returns the raw response bytes, for
// byte-identity assertions.
func postJSONRaw(t *testing.T, srv *httptest.Server, body map[string]any) []byte {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/discover", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	return raw
}

// durableServer boots a journaled server over path with its own registry.
func durableServer(t *testing.T, path string, size int) (*httptest.Server, *Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := NewServer(Config{Metrics: reg, CacheSize: size, CacheJournal: path})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, s, reg
}

// TestCacheJournalSurvivesRestart is the durability contract: a restarted
// replica replays its journal and answers its first request from the cache,
// byte-identical to the pre-restart answer.
func TestCacheJournalSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.ndjson")
	body := map[string]any{"html": paperdoc.Figure2, "ontology": "obituary"}

	srv1, s1, _ := durableServer(t, path, 8)
	before := postJSONRaw(t, srv1, body)
	srv1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, s2, reg := durableServer(t, path, 8)
	defer s2.Close()
	after := postJSONRaw(t, srv2, body)
	if !bytes.Equal(before, after) {
		t.Errorf("post-restart response differs from pre-restart:\nbefore %.200s\nafter  %.200s", before, after)
	}
	if !metricValue(t, reg, "boundary_cache_hits_total 1") {
		t.Error("first post-restart request should hit the replayed cache")
	}
	if metricValue(t, reg, "boundary_cache_misses_total 1") {
		t.Error("first post-restart request should not miss")
	}
}

// TestCacheJournalRecordsEvictions: a capacity-1 cache that churned through
// two documents must come back holding only the survivor.
func TestCacheJournalRecordsEvictions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.ndjson")
	docA := map[string]any{"html": "<div><hr><b>A</b> one<hr><b>B</b> two<hr></div>"}
	docB := map[string]any{"html": "<div><hr><b>C</b> three<hr><b>D</b> four<hr></div>"}

	srv1, s1, _ := durableServer(t, path, 1)
	postJSONRaw(t, srv1, docA)
	postJSONRaw(t, srv1, docB) // evicts docA's entry
	srv1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, s2, reg := durableServer(t, path, 1)
	defer s2.Close()
	postJSONRaw(t, srv2, docB)
	if !metricValue(t, reg, "boundary_cache_hits_total 1") {
		t.Error("surviving entry should hit after restart")
	}
	postJSONRaw(t, srv2, docA)
	if !metricValue(t, reg, "boundary_cache_misses_total 1") {
		t.Error("evicted entry should miss after restart")
	}
}

// TestCacheJournalCorruptBodyRefuses: damage before the final line must
// refuse to open rather than serve a partial memory.
func TestCacheJournalCorruptBodyRefuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.ndjson")
	body := `garbage` + "\n" + `{"v":1,"evict":"00"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(Config{CacheSize: 8, CacheJournal: path}); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("error %v should wrap journal.ErrCorrupt", err)
	}
}

// TestCacheJournalRequiresCache: a journal without a cache is a
// misconfiguration, not a silent no-op.
func TestCacheJournalRequiresCache(t *testing.T) {
	if _, err := NewServer(Config{CacheJournal: "x.ndjson"}); err == nil {
		t.Fatal("CacheJournal without CacheSize should error")
	}
}

func TestDiscoverUncachedStillWorks(t *testing.T) {
	// The bare mux (NewServeMux) has no cache; discovery must be unaffected.
	srv := newServer(t)
	resp, body := post(t, srv, "/v1/discover", map[string]any{"html": paperdoc.Figure2})
	if resp.StatusCode != http.StatusOK || str(t, body["separator"]) != "hr" {
		t.Fatalf("status = %d, separator = %s", resp.StatusCode, body["separator"])
	}
}
