package httpapi

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/lru"
	"repro/internal/obs"
)

// resultCache memoizes discovery responses keyed by a fingerprint of the
// document and every option that can change the answer. Cached values are
// the wire-form responses, which are immutable once built and far smaller
// than a core.Result (no tag tree retained), so sharing them across
// concurrent requests is safe and cheap.
//
// It also deduplicates in-flight computations (singleflight): while one
// request is computing a key, identical requests join its inflightCall and
// wait for the shared result instead of running the pipeline again.
type resultCache struct {
	c       *lru.Cache[[sha256.Size]byte, *discoverResponse]
	metrics *obs.Registry

	mu       sync.Mutex
	inflight map[[sha256.Size]byte]*inflightCall
}

// inflightCall is one in-progress computation that followers wait on. done
// is closed exactly once, after resp and err are set; followers must only
// read them after <-done.
type inflightCall struct {
	done chan struct{}
	resp *discoverResponse
	err  *apiError
}

// newResultCache returns a cache holding up to size responses, or nil when
// size is not positive (caching disabled). Hit/miss/eviction counters and a
// resident-entry gauge are filed under boundary_cache_* in metrics.
func newResultCache(size int, metrics *obs.Registry) *resultCache {
	if size <= 0 {
		return nil
	}
	return &resultCache{
		c:        lru.New[[sha256.Size]byte, *discoverResponse](size),
		metrics:  metrics,
		inflight: make(map[[sha256.Size]byte]*inflightCall),
	}
}

// RequestFingerprint fingerprints one discover request: parse mode ("html"
// or "xml"), document bytes, the ontology argument verbatim (builtin name or
// DSL source), and the separator-list override. Fields are length-prefixed so
// concatenations cannot collide.
//
// It is both the result-cache key and the cluster router's consistent-hash
// routing key: because the two agree, every request for a given (document,
// options) pair lands on the same replica, whose LRU cache therefore stays
// hot for exactly its key range.
func RequestFingerprint(mode, doc, ontologySrc string, separatorList []string) [sha256.Size]byte {
	h := sha256.New()
	var n [8]byte
	writeField := func(s string) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeField(mode)
	writeField(doc)
	writeField(ontologySrc)
	for _, s := range separatorList {
		writeField(s)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// get returns the cached response for key, counting the hit or miss. A nil
// cache misses everything and counts nothing.
func (rc *resultCache) get(key [sha256.Size]byte) (*discoverResponse, bool) {
	if rc == nil {
		return nil, false
	}
	resp, ok := rc.c.Get(key)
	if ok {
		rc.metrics.Counter("boundary_cache_hits_total",
			"Discovery requests served from the result cache.").Inc()
	} else {
		rc.metrics.Counter("boundary_cache_misses_total",
			"Discovery requests that missed the result cache.").Inc()
	}
	return resp, ok
}

// put stores a response, counting any eviction and updating the entry gauge.
func (rc *resultCache) put(key [sha256.Size]byte, resp *discoverResponse) {
	if rc == nil {
		return
	}
	if rc.c.Add(key, resp) {
		rc.metrics.Counter("boundary_cache_evictions_total",
			"Result-cache entries evicted to make room.").Inc()
	}
	rc.metrics.Gauge("boundary_cache_entries",
		"Result-cache entries currently resident.").Set(float64(rc.c.Len()))
}

// join registers interest in key's computation. The first caller becomes the
// leader (leader == true) and must eventually call complete with the same
// call; later callers receive the leader's call and wait on call.done.
func (rc *resultCache) join(key [sha256.Size]byte) (call *inflightCall, leader bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if c, ok := rc.inflight[key]; ok {
		return c, false
	}
	c := &inflightCall{done: make(chan struct{})}
	rc.inflight[key] = c
	return c, true
}

// complete publishes the leader's outcome to followers and retires the
// in-flight entry. Successful, non-degraded responses are cached; degraded
// ones are not — a later retry with all heuristics healthy should get the
// chance to compute (and then cache) the full answer.
func (rc *resultCache) complete(key [sha256.Size]byte, call *inflightCall, resp *discoverResponse, err *apiError) {
	if err == nil && resp != nil && !resp.Degraded {
		rc.put(key, resp)
	}
	rc.mu.Lock()
	delete(rc.inflight, key)
	rc.mu.Unlock()
	call.resp, call.err = resp, err
	close(call.done)
}
