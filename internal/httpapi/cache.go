package httpapi

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/lru"
	"repro/internal/obs"
)

// resultCache memoizes discovery responses keyed by a fingerprint of the
// document and every option that can change the answer. Cached values are
// the wire-form responses, which are immutable once built and far smaller
// than a core.Result (no tag tree retained), so sharing them across
// concurrent requests is safe and cheap.
//
// It also deduplicates in-flight computations (singleflight): while one
// request is computing a key, identical requests join its inflightCall and
// wait for the shared result instead of running the pipeline again.
// With a journal path the cache is durable: every put and capacity eviction
// is appended to an NDJSON journal (the same torn-tail-tolerant, compacting
// machinery behind the wrapper store), so a restarted replica replays its
// memory and serves its first requests warm instead of stampeding the
// heuristics. Cached responses are wire-form JSON, and the encoder's
// canonical output (shortest-form floats, sorted map keys) makes the
// journaled round trip byte-identical — the same property the cluster
// stream merge already relies on.
type resultCache struct {
	c       *lru.Cache[[sha256.Size]byte, *discoverResponse]
	metrics *obs.Registry
	journal *journal.Journal // nil when memory-only

	mu       sync.Mutex
	inflight map[[sha256.Size]byte]*inflightCall
}

// cacheLine is the journaled wire form of one cached result.
type cacheLine struct {
	Key  string            `json:"key"` // hex request fingerprint
	Resp *discoverResponse `json:"resp"`
}

// inflightCall is one in-progress computation that followers wait on. done
// is closed exactly once, after resp and err are set; followers must only
// read them after <-done.
type inflightCall struct {
	done chan struct{}
	resp *discoverResponse
	err  *apiError
}

// newResultCache returns a cache holding up to size responses, or nil when
// size is not positive (caching disabled). Hit/miss/eviction counters and a
// resident-entry gauge are filed under boundary_cache_* in metrics. A
// non-empty journalPath makes the cache durable: the journal is replayed
// into the cache before it sees traffic, and corruption before the final
// line refuses to open (wrapping journal.ErrCorrupt).
func newResultCache(size int, journalPath string, metrics *obs.Registry, faults *faultinject.Set) (*resultCache, error) {
	if size <= 0 {
		if journalPath != "" {
			return nil, errors.New("httpapi: a cache journal requires a result cache (CacheSize > 0)")
		}
		return nil, nil
	}
	rc := &resultCache{
		c:        lru.New[[sha256.Size]byte, *discoverResponse](size),
		metrics:  metrics,
		inflight: make(map[[sha256.Size]byte]*inflightCall),
	}
	if journalPath == "" {
		return rc, nil
	}
	j, err := journal.Open(journal.Config{
		Path:     journalPath,
		Snapshot: rc.snapshot,
		Faults:   faults,
	}, rc.applyPut, rc.applyEvict)
	if err != nil {
		return nil, err
	}
	rc.journal = j
	rc.metrics.Gauge("boundary_cache_entries",
		"Result-cache entries currently resident.").Set(float64(rc.c.Len()))
	return rc, nil
}

// applyPut replays one journaled result into the cache.
func (rc *resultCache) applyPut(put json.RawMessage) error {
	var ln cacheLine
	if err := json.Unmarshal(put, &ln); err != nil {
		return err
	}
	key, err := parseCacheKey(ln.Key)
	if err != nil {
		return err
	}
	if ln.Resp == nil {
		return errors.New("cache line missing response")
	}
	rc.c.Add(key, ln.Resp)
	return nil
}

// applyEvict replays one journaled eviction.
func (rc *resultCache) applyEvict(key string) error {
	k, err := parseCacheKey(key)
	if err != nil {
		return err
	}
	rc.c.Remove(k)
	return nil
}

// snapshot emits the live cache for journal compaction, least recently used
// first so a replay reproduces the recency order.
func (rc *resultCache) snapshot() []json.RawMessage {
	items := rc.c.Items()
	out := make([]json.RawMessage, 0, len(items))
	for _, it := range items {
		b, err := json.Marshal(cacheLine{Key: hex.EncodeToString(it.Key[:]), Resp: it.Value})
		if err != nil {
			continue
		}
		out = append(out, b)
	}
	return out
}

// parseCacheKey decodes a hex fingerprint back into the cache key.
func parseCacheKey(s string) ([sha256.Size]byte, error) {
	var key [sha256.Size]byte
	b, err := hex.DecodeString(s)
	if err != nil {
		return key, err
	}
	if len(b) != sha256.Size {
		return key, fmt.Errorf("cache key is %d bytes, want %d", len(b), sha256.Size)
	}
	copy(key[:], b)
	return key, nil
}

// close compacts and closes the journal; nil-safe for disabled caches and
// no-op for memory-only ones.
func (rc *resultCache) close() error {
	if rc == nil {
		return nil
	}
	return rc.journal.Close()
}

// RequestFingerprint fingerprints one discover request: parse mode ("html"
// or "xml"), document bytes, the ontology argument verbatim (builtin name or
// DSL source), and the separator-list override. Fields are length-prefixed so
// concatenations cannot collide.
//
// It is both the result-cache key and the cluster router's consistent-hash
// routing key: because the two agree, every request for a given (document,
// options) pair lands on the same replica, whose LRU cache therefore stays
// hot for exactly its key range.
func RequestFingerprint(mode, doc, ontologySrc string, separatorList []string) [sha256.Size]byte {
	h := sha256.New()
	var n [8]byte
	writeField := func(s string) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeField(mode)
	writeField(doc)
	writeField(ontologySrc)
	for _, s := range separatorList {
		writeField(s)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// get returns the cached response for key, counting the hit or miss. A nil
// cache misses everything and counts nothing.
func (rc *resultCache) get(key [sha256.Size]byte) (*discoverResponse, bool) {
	if rc == nil {
		return nil, false
	}
	resp, ok := rc.c.Get(key)
	if ok {
		rc.metrics.Counter("boundary_cache_hits_total",
			"Discovery requests served from the result cache.").Inc()
	} else {
		rc.metrics.Counter("boundary_cache_misses_total",
			"Discovery requests that missed the result cache.").Inc()
	}
	return resp, ok
}

// put stores a response, counting any eviction, updating the entry gauge,
// and journaling both the put and any capacity eviction when durable.
func (rc *resultCache) put(key [sha256.Size]byte, resp *discoverResponse) {
	if rc == nil {
		return
	}
	evictedKey, evicted := rc.c.Add(key, resp)
	if evicted {
		rc.metrics.Counter("boundary_cache_evictions_total",
			"Result-cache entries evicted to make room.").Inc()
	}
	rc.metrics.Gauge("boundary_cache_entries",
		"Result-cache entries currently resident.").Set(float64(rc.c.Len()))
	if rc.journal == nil {
		return
	}
	if evicted {
		rc.journal.AppendEvict(hex.EncodeToString(evictedKey[:]), rc.c.Len())
	}
	if b, err := json.Marshal(cacheLine{Key: hex.EncodeToString(key[:]), Resp: resp}); err == nil {
		rc.journal.Append(b, rc.c.Len())
	}
}

// join registers interest in key's computation. The first caller becomes the
// leader (leader == true) and must eventually call complete with the same
// call; later callers receive the leader's call and wait on call.done.
func (rc *resultCache) join(key [sha256.Size]byte) (call *inflightCall, leader bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if c, ok := rc.inflight[key]; ok {
		return c, false
	}
	c := &inflightCall{done: make(chan struct{})}
	rc.inflight[key] = c
	return c, true
}

// complete publishes the leader's outcome to followers and retires the
// in-flight entry. Successful, non-degraded responses are cached; degraded
// ones are not — a later retry with all heuristics healthy should get the
// chance to compute (and then cache) the full answer.
func (rc *resultCache) complete(key [sha256.Size]byte, call *inflightCall, resp *discoverResponse, err *apiError) {
	if err == nil && resp != nil && !resp.Degraded {
		rc.put(key, resp)
	}
	rc.mu.Lock()
	delete(rc.inflight, key)
	rc.mu.Unlock()
	call.resp, call.err = resp, err
	close(call.done)
}
