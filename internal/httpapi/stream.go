package httpapi

import (
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// handleDiscoverStream is the bulk engine's serving surface: the request
// body is an NDJSON task stream (the /v1/discover envelope plus optional
// "id" and "shard" labels, one document per line) and the response streams
// one NDJSON outcome per document, in input order, flushed as each completes.
//
// Backpressure is structural: the engine reads the body only as fast as its
// worker pool and reorder window allow, so a slow server throttles the
// sender through TCP instead of buffering the corpus; the stream occupies
// one slot of the -max-inflight limiter for its whole life. Documents fail
// inline (an "error" field on that line) — one bad document never ends the
// stream. Per-line size is bounded by the same limit as whole bodies
// elsewhere (MaxBodyBytes); an oversized line fails inline too. Responses
// are not cached: the path is built for one pass over a large corpus, not
// for hot-document reuse.
//
// The response status is committed (200) before the first document is
// processed — per-document failures are in-band, and a broken input stream
// surfaces as an error line followed by end-of-stream.
func (s server) handleDiscoverStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		s.cfg.Metrics.Histogram("boundary_stream_duration_seconds",
			"Wall-clock duration of one /v1/discover/stream request.", nil).
			Observe(time.Since(start).Seconds())
	}()
	eng := pipeline.New(pipeline.Config{
		Workers:   s.cfg.BatchWorkers,
		Metrics:   s.cfg.Metrics,
		Trace:     obs.TraceFrom(r.Context()),
		Limits:    s.cfg.Limits,
		Faults:    s.cfg.Faults,
		Templates: s.cfg.Templates,
	})
	var flush func()
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	// The endpoint reads the request body while writing the response; on
	// HTTP/1.x the server closes the body at the first write unless full
	// duplex is enabled (HTTP/2 streams are always full duplex, where this
	// is a no-op; on servers that cannot support it the stream still works
	// for bodies small enough to be buffered).
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	src := pipeline.NewNDJSONSource(r.Body, MaxBodyBytes)
	sink := pipeline.NewWriterSink(w, flush)
	// Per-document problems were already reported inline; a run-level error
	// (body read failure, server-side cancel) gets a final error line when
	// the connection is still alive, then the stream ends.
	if _, err := eng.Run(r.Context(), src, sink, nil); err != nil && r.Context().Err() == nil {
		_, _, _ = sink.Write(&pipeline.Outcome{Seq: -1, Error: "stream aborted: " + err.Error()})
	}
}
