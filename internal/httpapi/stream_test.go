package httpapi

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/paperdoc"
)

// streamLines posts NDJSON to /v1/discover/stream and returns the decoded
// response lines.
func streamLines(t *testing.T, body string) (*http.Response, []map[string]json.RawMessage) {
	t.Helper()
	srv, _ := cachedServer(t, 0)
	resp, err := http.Post(srv.URL+"/v1/discover/stream", "application/x-ndjson",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var lines []map[string]json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

func seqOf(t *testing.T, raw json.RawMessage) int {
	t.Helper()
	var n int
	if err := json.Unmarshal(raw, &n); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestStreamEndpointOrderAndContentType(t *testing.T) {
	body := strings.Join([]string{
		`{"id":"plain","html":"<div><hr><b>A</b> one<hr><b>B</b> two<hr><b>C</b> three</div>"}`,
		mustLine(t, map[string]any{"id": "fig2", "html": paperdoc.Figure2, "ontology": "obituary"}),
		`{"id":"feed","xml":"<feed><entry>a b</entry><entry>c d</entry><entry>e f</entry></feed>"}`,
	}, "\n")
	resp, lines := streamLines(t, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, want := range []string{"hr", "hr", "entry"} {
		if got := seqOf(t, lines[i]["seq"]); got != i {
			t.Errorf("line %d seq = %d; stream must preserve input order", i, got)
		}
		if got := str(t, lines[i]["separator"]); got != want {
			t.Errorf("line %d separator = %q, want %q", i, got, want)
		}
	}
	for i, want := range []string{"plain", "fig2", "feed"} {
		if got := str(t, lines[i]["id"]); got != want {
			t.Errorf("line %d id = %q, want %q", i, got, want)
		}
	}
}

func TestStreamEndpointInlineErrors(t *testing.T) {
	body := strings.Join([]string{
		`{"html":"<div><hr><b>A</b> one<hr><b>B</b> two<hr><b>C</b> three</div>"}`,
		`this line is not JSON`,
		`{"html":"plain text, no tags"}`,
		`{"html":"<div><hr><b>A</b> one<hr><b>B</b> two<hr><b>C</b> three</div>"}`,
	}, "\n")
	resp, lines := streamLines(t, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; per-document failures must stay in-band", resp.StatusCode)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	for _, i := range []int{1, 2} {
		if lines[i]["error"] == nil {
			t.Errorf("line %d should carry an inline error: %v", i, lines[i])
		}
	}
	for _, i := range []int{0, 3} {
		if lines[i]["error"] != nil {
			t.Errorf("line %d should succeed: %s", i, lines[i]["error"])
		}
		if got := str(t, lines[i]["separator"]); got != "hr" {
			t.Errorf("line %d separator = %q", i, got)
		}
	}
}

func TestStreamEndpointEmptyBody(t *testing.T) {
	resp, lines := streamLines(t, "")
	if resp.StatusCode != http.StatusOK || len(lines) != 0 {
		t.Fatalf("empty stream: status %d, %d lines", resp.StatusCode, len(lines))
	}
}

func TestStreamEndpointMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewHandler(Config{Metrics: reg}))
	t.Cleanup(srv.Close)
	resp, err := http.Post(srv.URL+"/v1/discover/stream", "application/x-ndjson",
		strings.NewReader(`{"html":"<div><hr><b>A</b> x<hr><b>B</b> y<hr></div>"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := reg.Counter("boundary_bulk_documents_total", "", "outcome", "ok").Value(); got != 1 {
		t.Errorf("boundary_bulk_documents_total{outcome=ok} = %v, want 1", got)
	}
}

func mustLine(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
