package httpapi

import (
	"errors"
	"net/http"

	"repro/internal/membership"
)

// Cluster-membership endpoints — the wire surface of internal/membership's
// gossip protocol, mounted on every replica's serving port:
//
//	POST /v1/cluster/gossip   {message}  — merge a peer's view, reply with ours
//	POST /v1/cluster/join     {message}  — alias: a join is a first gossip
//	GET  /v1/cluster/members             — full member table + view digest
//
// All answer 503 on a node running without membership (single-node mode), so
// a misdirected gossip fails cleanly instead of looking like a routing bug.
// Membership traffic bypasses the /v1/ load shedding and request timeout
// (see server.limit): a saturated replica must keep heartbeating, or load
// alone would drive Suspect→Dead ejections.

func registerClusterRoutes(mux *http.ServeMux, s server) {
	mux.HandleFunc("POST "+membership.GossipPath, s.handleGossip)
	mux.HandleFunc("POST "+membership.JoinPath, s.handleGossip)
	mux.HandleFunc("GET /v1/cluster/members", s.handleMembers)
}

func (s server) handleGossip(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Membership == nil {
		writeErr(w, http.StatusServiceUnavailable,
			errors.New("this node runs without cluster membership"))
		return
	}
	var msg membership.Message
	if !decodeJSON(w, r, &msg) {
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Membership.ReceiveGossip(msg))
}

func (s server) handleMembers(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Membership == nil {
		writeErr(w, http.StatusServiceUnavailable,
			errors.New("this node runs without cluster membership"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"digest":  s.cfg.Membership.Digest(),
		"members": s.cfg.Membership.Members(),
		"serving": s.cfg.Membership.Serving(),
	})
}
