package httpapi

// Chaos tests: the fault-injection harness (internal/faultinject) armed
// against the full HTTP service, proving the acceptance properties of the
// hardened pipeline — isolated heuristic panics degrade instead of crash,
// canceled batches stop dispatching, saturation sheds with 429, and
// resource limits answer typed 413/422. The package's TestMain fails the
// run if any of these paths leak goroutines.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/paperdoc"
	"repro/internal/tagtree"
	"repro/internal/template"
)

func newChaosServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(cfg))
	t.Cleanup(srv.Close)
	return srv
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// waitFired polls until the hook point has fired at least n times.
func waitFired(t *testing.T, faults *faultinject.Set, point string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for faults.Fired(point) < n {
		if time.Now().After(deadline) {
			t.Fatalf("hook %s fired %d times, want >= %d", point, faults.Fired(point), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosHeuristicPanicDegrades (acceptance a): an injected heuristic
// panic still answers 200, marked degraded with the heuristic named, the
// panic counter ticks — and the degraded response is NOT cached, so the
// next request after the fault clears gets the full answer.
func TestChaosHeuristicPanicDegrades(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("core/heuristic/HT", faultinject.Fault{Panic: "chaos: HT down"})
	reg := obs.NewRegistry()
	srv := newChaosServer(t, Config{Metrics: reg, CacheSize: 8, Faults: faults})

	body := map[string]any{"html": paperdoc.Figure2, "ontology": "obituary"}
	resp, decoded := post(t, srv, "/v1/discover", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, decoded["error"])
	}
	if got := str(t, decoded["separator"]); got != "hr" {
		t.Errorf("separator = %q, want hr from surviving heuristics", got)
	}
	var degraded bool
	if err := json.Unmarshal(decoded["degraded"], &degraded); err != nil || !degraded {
		t.Errorf("degraded = %s, want true", decoded["degraded"])
	}
	var failed []string
	if err := json.Unmarshal(decoded["failed_heuristics"], &failed); err != nil ||
		len(failed) != 1 || failed[0] != "HT" {
		t.Errorf("failed_heuristics = %s, want [HT]", decoded["failed_heuristics"])
	}

	_, metrics := getBody(t, srv.URL+"/metrics")
	if !strings.Contains(metrics, `boundary_heuristic_panics_total{heuristic="HT"} 1`) {
		t.Errorf("panic counter missing:\n%s", metrics)
	}

	// Clear the fault: the identical request must recompute (degraded
	// answers are never cached) and come back whole.
	faults.Remove("core/heuristic/HT")
	resp, decoded = post(t, srv, "/v1/discover", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after clearing fault = %d", resp.StatusCode)
	}
	if _, ok := decoded["degraded"]; ok {
		t.Error("degraded response was served from cache after the fault cleared")
	}
}

// TestChaosBatchCancelStopsDispatch (acceptance b): when the request
// deadline expires mid-batch, dispatch stops — later documents come back
// with code "not_attempted" instead of burning pipeline work. (TestMain
// verifies the worker pool goroutines all unwound.)
func TestChaosBatchCancelStopsDispatch(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("httpapi/discover", faultinject.Fault{Delay: 100 * time.Millisecond})
	srv := newChaosServer(t, Config{
		Faults:         faults,
		BatchWorkers:   1,
		RequestTimeout: 250 * time.Millisecond,
	})

	docs := make([]map[string]any, 8)
	for i := range docs {
		docs[i] = map[string]any{
			"html": fmt.Sprintf("<div><hr><b>doc %d</b> x<hr><b>B</b> y<hr></div>", i),
		}
	}
	resp, decoded := post(t, srv, "/v1/discover/batch", map[string]any{"documents": docs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, decoded["error"])
	}
	var results []struct {
		Separator string `json:"separator"`
		Error     string `json:"error"`
		Code      string `json:"code"`
	}
	if err := json.Unmarshal(decoded["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(docs) {
		t.Fatalf("results = %d, want %d", len(results), len(docs))
	}
	if results[0].Error != "" {
		t.Errorf("first document failed: %s", results[0].Error)
	}
	notAttempted := 0
	for _, r := range results {
		if r.Code == codeNotAttempted {
			notAttempted++
		}
	}
	if notAttempted == 0 {
		t.Error("no documents marked not_attempted after mid-batch deadline")
	}
	if last := results[len(results)-1]; last.Code != codeNotAttempted {
		t.Errorf("last document code = %q error = %q, want not_attempted", last.Code, last.Error)
	}
}

// TestChaosMaxInFlightSheds (acceptance c): with the in-flight limit
// saturated by a slow request, the next one is shed with 429 + Retry-After
// and counted, while /healthz stays reachable.
func TestChaosMaxInFlightSheds(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("httpapi/discover", faultinject.Fault{Delay: time.Second, Times: 1})
	reg := obs.NewRegistry()
	srv := newChaosServer(t, Config{Metrics: reg, MaxInFlight: 1, Faults: faults})

	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/discover", "application/json",
			strings.NewReader(`{"html":"<div><hr><b>slow</b> x<hr><b>B</b> y<hr></div>"}`))
		if err != nil {
			slowDone <- 0
			return
		}
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	// The hook fires after the semaphore is acquired, so one firing means
	// the slot is held and the delay is ticking.
	waitFired(t, faults, "httpapi/discover", 1)

	resp, err := http.Post(srv.URL+"/v1/discover", "application/json",
		strings.NewReader(`{"html":"<div><hr><b>shed me</b> x<hr></div>"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	if code, _ := getBody(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d while saturated, want 200 (ops routes bypass shedding)", code)
	}

	if got := <-slowDone; got != http.StatusOK {
		t.Errorf("slow request finished with %d, want 200", got)
	}
	_, metrics := getBody(t, srv.URL+"/metrics")
	if !strings.Contains(metrics, "boundary_requests_shed_total 1") {
		t.Errorf("shed counter missing:\n%s", metrics)
	}
}

// TestChaosResourceLimits (acceptance d): per-document parse limits answer
// typed statuses — 422 for structural limits, 413 for the byte limit.
func TestChaosResourceLimits(t *testing.T) {
	srv := newChaosServer(t, Config{
		Limits: tagtree.Limits{MaxBytes: 4 << 10, MaxDepth: 4, MaxNodes: 64},
	})

	deep := strings.Repeat("<div>", 10) + "x" + strings.Repeat("</div>", 10)
	resp, decoded := post(t, srv, "/v1/discover", map[string]any{"html": deep})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("deep document status = %d, want 422 (%s)", resp.StatusCode, decoded["error"])
	}

	wide := "<div>" + strings.Repeat("<b>x</b>", 100) + "</div>"
	resp, decoded = post(t, srv, "/v1/discover", map[string]any{"html": wide})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("wide document status = %d, want 422 (%s)", resp.StatusCode, decoded["error"])
	}

	big := "<div><hr>" + strings.Repeat("padding ", 1024) + "<hr></div>"
	resp, decoded = post(t, srv, "/v1/discover", map[string]any{"html": big})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized document status = %d, want 413 (%s)", resp.StatusCode, decoded["error"])
	}
}

// TestChaosRequestTimeout: a request that outlives -request-timeout answers
// 503, not a hang.
func TestChaosRequestTimeout(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("httpapi/discover", faultinject.Fault{Delay: 2 * time.Second})
	srv := newChaosServer(t, Config{Faults: faults, RequestTimeout: 50 * time.Millisecond})

	start := time.Now()
	resp, decoded := post(t, srv, "/v1/discover", map[string]any{
		"html": "<div><hr><b>A</b> x<hr><b>B</b> y<hr></div>",
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", resp.StatusCode, decoded["error"])
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timed-out request took %v; the injected delay was not interrupted", elapsed)
	}
}

// TestChaosSingleflightDedup: concurrent identical requests share one
// pipeline run — followers wait on the leader and the dedup counter ticks.
func TestChaosSingleflightDedup(t *testing.T) {
	faults := faultinject.New()
	// Only the leader is delayed (Times: 1), holding the in-flight window
	// open while followers arrive.
	faults.Inject("httpapi/discover", faultinject.Fault{Delay: 500 * time.Millisecond, Times: 1})
	reg := obs.NewRegistry()
	srv := newChaosServer(t, Config{Metrics: reg, CacheSize: 8, Faults: faults})

	body := `{"html":"<div><hr><b>A</b> x<hr><b>B</b> y<hr></div>"}`
	leaderDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/discover", "application/json", strings.NewReader(body))
		if err != nil {
			leaderDone <- 0
			return
		}
		resp.Body.Close()
		leaderDone <- resp.StatusCode
	}()
	waitFired(t, faults, "httpapi/discover", 1)

	const followers = 4
	var wg sync.WaitGroup
	codes := make([]int, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/discover", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}()
	}
	wg.Wait()
	if got := <-leaderDone; got != http.StatusOK {
		t.Fatalf("leader status = %d", got)
	}
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("follower %d status = %d", i, c)
		}
	}
	_, metrics := getBody(t, srv.URL+"/metrics")
	if !strings.Contains(metrics, "boundary_cache_inflight_dedup_total") {
		t.Errorf("dedup counter missing after concurrent identical requests:\n%s", metrics)
	}
	// Exactly one pipeline run served all five requests.
	if got := faults.Fired("httpapi/discover"); got != 1 {
		t.Errorf("httpapi/discover fired %d times, want 1 (followers must not recompute)", got)
	}
}

// TestChaosTemplateStoreDegraded: an armed template/lookup fault must not
// surface to clients — a request that would have been a wrapper-store hit
// silently pays full discovery instead, returning bytes identical to the
// healthy warm answer, and the degradation is visible only as
// boundary_template_lookup_errors_total. Clearing the fault restores the
// fast path.
func TestChaosTemplateStoreDegraded(t *testing.T) {
	faults := faultinject.New()
	reg := obs.NewRegistry()
	store, err := template.Open(template.Config{Metrics: reg, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := newChaosServer(t, Config{Metrics: reg, Templates: store})

	body, err := json.Marshal(map[string]any{"html": paperdoc.Figure2, "ontology": "obituary"})
	if err != nil {
		t.Fatal(err)
	}
	postBytes := func() (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/discover", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	// Cold request learns the wrapper; healthy warm request is the reference.
	if code, _ := postBytes(); code != http.StatusOK {
		t.Fatalf("cold status = %d", code)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d entries after cold request, want 1", store.Len())
	}
	code, want := postBytes()
	if code != http.StatusOK {
		t.Fatalf("warm status = %d", code)
	}
	healthy := store.Stats()
	if healthy.Hits < 1 {
		t.Fatalf("healthy warm request did not hit the store: %+v", healthy)
	}

	faults.Inject(template.FaultLookup, faultinject.Fault{Err: fmt.Errorf("chaos: store down")})
	code, got := postBytes()
	if code != http.StatusOK {
		t.Fatalf("faulted status = %d, want 200 (fallback to full discovery)", code)
	}
	if string(got) != string(want) {
		t.Errorf("faulted response differs from healthy warm response:\n got %s\nwant %s", got, want)
	}
	faulted := store.Stats()
	if faulted.LookupErrors != healthy.LookupErrors+1 {
		t.Errorf("lookup errors %v, want %v", faulted.LookupErrors, healthy.LookupErrors+1)
	}
	if faulted.Hits != healthy.Hits {
		t.Errorf("faulted request counted as a hit: %+v", faulted)
	}

	// Fault cleared: the fast path resumes.
	faults.Remove(template.FaultLookup)
	code, got = postBytes()
	if code != http.StatusOK || string(got) != string(want) {
		t.Fatalf("post-fault response wrong: status %d", code)
	}
	if recovered := store.Stats(); recovered.Hits != faulted.Hits+1 {
		t.Errorf("fast path did not resume after the fault cleared: %+v", recovered)
	}
}
