package dbgen

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/paperdoc"
	"repro/internal/reldb"
)

func populateFigure2(t *testing.T) *reldb.DB {
	t.Helper()
	ont := ontology.Builtin("obituary")
	res, err := core.Discover(paperdoc.Figure2, core.Options{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Populate(ont, res)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPopulateFigure2ThreeObituaries(t *testing.T) {
	db := populateFigure2(t)
	tab := db.Table("Obituary")
	if tab == nil {
		t.Fatal("no Obituary table")
	}
	if tab.Len() != 3 {
		rows := tab.Select(nil)
		for _, r := range rows {
			t.Logf("row: name=%v death=%v", r.Get("DeceasedName"), r.Get("DeathDate"))
		}
		t.Fatalf("obituaries = %d, want 3 (header/footer must be rejected)", tab.Len())
	}
}

func TestPopulateFigure2Names(t *testing.T) {
	db := populateFigure2(t)
	rows := db.Table("Obituary").Select(nil)
	wantNames := []string{"Lemar K. Adamson", "Brian Fielding Frost", "Leonard Kenneth Gunther"}
	for i, w := range wantNames {
		if got := rows[i].Get("DeceasedName").Str; got != w {
			t.Errorf("record %d name = %q, want %q", i+1, got, w)
		}
	}
}

func TestPopulateFigure2KeywordAnchoredDates(t *testing.T) {
	db := populateFigure2(t)
	rows := db.Table("Obituary").Select(nil)
	// All three died September 30, 1998 — and crucially the keyword
	// anchoring must NOT pick up the nearby birth dates.
	for i, r := range rows {
		if got := r.Get("DeathDate").Str; got != "September 30, 1998" {
			t.Errorf("record %d DeathDate = %q, want September 30, 1998", i+1, got)
		}
	}
	// Record 1's birth date is distinct and must land in BirthDate.
	if got := rows[0].Get("BirthDate").Str; got != "September 5, 1913" {
		t.Errorf("record 1 BirthDate = %q, want September 5, 1913", got)
	}
}

func TestPopulateSchemeShape(t *testing.T) {
	db := populateFigure2(t)
	names := db.TableNames()
	if names[0] != "Obituary" {
		t.Errorf("first table = %s", names[0])
	}
	// One many-valued set in the obituary ontology: Relative.
	found := false
	for _, n := range names {
		if n == "Obituary_Relative" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing many-valued table; have %v", names)
	}
}

func TestRecordSpansFigure2(t *testing.T) {
	ont := ontology.Builtin("obituary")
	res, err := core.Discover(paperdoc.Figure2, core.Options{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	spans := RecordSpans(res)
	// header + 3 records + trailing region inside td.
	if len(spans) != 5 {
		t.Fatalf("spans = %d (%v), want 5", len(spans), spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			t.Errorf("spans overlap: %v %v", spans[i-1], spans[i])
		}
	}
}

func TestHeaderAndFooterRejected(t *testing.T) {
	// The "Funeral Notices - October 1, 1998" header chunk matches a name
	// pattern and a date but has no death/funeral/interment keywords, so it
	// must not become a record.
	db := populateFigure2(t)
	for _, r := range db.Table("Obituary").Select(nil) {
		if strings.Contains(r.Get("DeceasedName").Str, "Funeral Notices") {
			t.Error("header chunk became a record")
		}
	}
}

func TestPopulateFromTableSharesRecognition(t *testing.T) {
	// PopulateFromTable with a precomputed table must agree with Populate.
	ont := ontology.Builtin("obituary")
	res, err := core.Discover(paperdoc.Figure2, core.Options{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	db1, err := Populate(ont, res)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the table the heuristic context would have built.
	db2, err := Populate(ont, res)
	if err != nil {
		t.Fatal(err)
	}
	if db1.Summary() != db2.Summary() {
		t.Errorf("summaries differ: %s vs %s", db1.Summary(), db2.Summary())
	}
}

func TestPopulateCarAds(t *testing.T) {
	doc := `<html><body><table>
<tr><td><b>1994 Ford Taurus</b>, red, automatic, 78,000 miles. Excellent condition.
Asking $4,500 obo. Call Mike (801) 555-1234.</td></tr>
<tr><td><b>1991 Honda Civic</b>, blue, 5-speed, A/C, CD. Runs great. $2,900.
Call (801) 555-9876.</td></tr>
<tr><td><b>1997 Toyota Camry</b>, white, automatic, low miles, power windows.
$11,200. Call Sue (435) 555-4321.</td></tr>
</table></body></html>`
	ont := ontology.Builtin("carad")
	res, err := core.Discover(doc, core.Options{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "tr" && res.Separator != "td" {
		t.Fatalf("separator = %s, want tr or td\n%s", res.Separator, core.Explain(res))
	}
	db, err := Populate(ont, res)
	if err != nil {
		t.Fatal(err)
	}
	rows := db.Table("CarAd").Select(nil)
	if len(rows) != 3 {
		t.Fatalf("car ads = %d, want 3", len(rows))
	}
	wantYears := []string{"1994", "1991", "1997"}
	wantPrices := []string{"$4,500", "$2,900", "$11,200"}
	for i := range rows {
		if got := rows[i].Get("Year").Str; got != wantYears[i] {
			t.Errorf("ad %d year = %q, want %q", i+1, got, wantYears[i])
		}
		if got := rows[i].Get("Price").Str; got != wantPrices[i] {
			t.Errorf("ad %d price = %q, want %q", i+1, got, wantPrices[i])
		}
	}
}

func TestKeywordWindowBoundary(t *testing.T) {
	// A constant beyond KeywordWindow bytes after its keyword must not be
	// anchored to it; the keyword-only evidence is used instead.
	pad := strings.Repeat("x", KeywordWindow+8)
	doc := `<html><body><div>
<hr><b>Ann Alpha</b> died on ` + pad + ` March 3, 1998. Funeral services Friday. Interment follows.
<hr><b>Bob Beta</b> died on March 4, 1998. Funeral services Saturday. Interment follows.
<hr><b>Cal Gamma</b> died on March 5, 1998. Funeral services Sunday. Interment follows.
<hr></div></body></html>`
	ont := ontology.Builtin("obituary")
	res, err := core.Discover(doc, core.Options{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Populate(ont, res)
	if err != nil {
		t.Fatal(err)
	}
	rows := db.Table("Obituary").Select(nil)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Record 1's date is out of window: the DeathDate cell falls back to
	// the keyword evidence, not the distant date.
	if got := rows[0].Get("DeathDate").Str; got != "died on" {
		t.Errorf("record 1 DeathDate = %q, want the keyword-only evidence", got)
	}
	// Record 2's date is adjacent: anchored normally.
	if got := rows[1].Get("DeathDate").Str; got != "March 4, 1998" {
		t.Errorf("record 2 DeathDate = %q", got)
	}
}

func TestClaimedConstantNotReused(t *testing.T) {
	// Birth and death dates share the "date" type; once the death keyword
	// anchors a date, the birth keyword must not claim the same constant.
	doc := `<html><body><div>
<hr><b>Ann Alpha</b> died on March 3, 1998 and was born on March 3, 1998. Funeral services Friday. Interment follows.
<hr><b>Bob Beta</b> died on June 9, 1998. He was born on May 1, 1920. Funeral services Saturday. Interment follows.
<hr><b>Cal Gamma</b> died on July 2, 1998. He was born on April 4, 1931. Funeral services Sunday. Interment follows.
<hr></div></body></html>`
	ont := ontology.Builtin("obituary")
	res, err := core.Discover(doc, core.Options{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Populate(ont, res)
	if err != nil {
		t.Fatal(err)
	}
	rows := db.Table("Obituary").Select(nil)
	// Record 1: both dates are textually "March 3, 1998" but at different
	// positions — both fields bind, to different occurrences.
	if d, b := rows[0].Get("DeathDate").Str, rows[0].Get("BirthDate").Str; d != "March 3, 1998" || b != "March 3, 1998" {
		t.Errorf("record 1 dates = %q / %q", d, b)
	}
	// Record 2: distinct dates must land in their own columns.
	if d, b := rows[1].Get("DeathDate").Str, rows[1].Get("BirthDate").Str; d != "June 9, 1998" || b != "May 1, 1920" {
		t.Errorf("record 2 dates = %q / %q", d, b)
	}
}

func TestManyValuedFeaturesCollected(t *testing.T) {
	doc := `<html><body><div>
<p>1994 Ford Taurus, A/C, CD, power windows, cruise. $4,500. (801) 555-1234.</p>
<p>1991 Honda Civic, sunroof. $2,900. (801) 555-9876.</p>
<p>1997 Toyota Camry, leather, CD. $11,200. (435) 555-4321.</p>
</div></body></html>`
	ont := ontology.Builtin("carad")
	res, err := core.Discover(doc, core.Options{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Populate(ont, res)
	if err != nil {
		t.Fatal(err)
	}
	features := db.Table("CarAd_Feature")
	if features == nil {
		t.Fatal("no feature table")
	}
	if features.Len() < 6 {
		t.Errorf("feature rows = %d, want ≥ 6", features.Len())
	}
	// First ad has 4 distinct features.
	got := features.Select(func(r reldb.Row) bool { return r.Get("carad_id").Str == "1" })
	if len(got) != 4 {
		t.Errorf("ad 1 features = %d, want 4", len(got))
	}
}
