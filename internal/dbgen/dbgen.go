// Package dbgen implements the Database-Instance Generator of the paper's
// Figure 1 in two stages:
//
//  1. Correlate partitions the Data-Record Table at the discovered record-
//     separator positions and correlates extracted keywords with extracted
//     constants into a typed model instance (internal/objrel — the
//     "Record-Level Objects, Relationships, and Constraints" box);
//  2. PopulateInstance applies the ontology's cardinality constraints and
//     loads the instance into the generated database scheme.
//
// Populate composes the two. The correlation heuristics follow the paper's
// Section 2 description: a constant is attributed to a field when it
// follows that field's keyword closely; value-only fields take their first
// unclaimed constant; many-valued fields collect every occurrence. Record
// chunks that fill too few one-to-one fields (page headers, copyright
// footers) are rejected.
package dbgen

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/objrel"
	"repro/internal/ontology"
	"repro/internal/recognizer"
	"repro/internal/reldb"
	"repro/internal/tagtree"
)

// KeywordWindow is the maximum distance, in bytes, between a keyword match
// and the constant it anchors ("died on" ... "September 30, 1998").
const KeywordWindow = 64

// MinFilledOneToOne is the number of one-to-one fields a chunk must fill to
// be accepted as a record; chunks below it (headers, footers) are dropped.
// Every built-in ontology has at least four one-to-one sets, so real records
// clear this even with one field missing, while page headers (which
// accidentally match a name pattern and a date constant) do not.
const MinFilledOneToOne = 3

// Span is one record-sized region of the document.
type Span struct{ Start, End int }

// RecordSpans derives the record spans from a discovery result: the regions
// between consecutive separator-tag occurrences within the highest-fan-out
// subtree, including the leading region before the first separator and the
// trailing region after the last.
func RecordSpans(res *core.Result) []Span {
	positions := tagtree.Occurrences(res.Tree, res.Subtree, res.Separator)
	bounds := make([]int, 0, len(positions)+2)
	bounds = append(bounds, res.Subtree.StartPos)
	bounds = append(bounds, positions...)
	bounds = append(bounds, res.Subtree.EndPos)
	var out []Span
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] < bounds[i+1] {
			out = append(out, Span{Start: bounds[i], End: bounds[i+1]})
		}
	}
	return out
}

// Populate runs the back half of the Figure 1 pipeline: recognize constants
// and keywords over the highest-fan-out subtree, correlate into a model
// instance, and load the generated scheme. The returned database has the
// ontology's generated scheme.
func Populate(ont *ontology.Ontology, res *core.Result) (*reldb.DB, error) {
	table := recognizer.Recognize(ont, res.Tree, res.Subtree)
	return PopulateFromTable(ont, res, table)
}

// PopulateFromTable is Populate for callers that already hold the
// Data-Record Table (the integrated-process case the paper's O(n) argument
// relies on).
func PopulateFromTable(ont *ontology.Ontology, res *core.Result, table *recognizer.Table) (*reldb.DB, error) {
	return PopulateInstance(ont, Correlate(ont, res, table))
}

// Correlate builds the record-level model instance: one entity instance per
// qualifying span, with provenance-tagged bindings and per-record
// constraint violations.
func Correlate(ont *ontology.Ontology, res *core.Result, table *recognizer.Table) *objrel.Instance {
	inst := &objrel.Instance{Entity: ont.Entity}
	for _, span := range RecordSpans(res) {
		entries := table.Slice(span.Start, span.End)
		if len(entries) == 0 {
			inst.Rejected++
			continue
		}
		rec, filled := buildRecord(ont, entries)
		if filled < MinFilledOneToOne {
			inst.Rejected++
			continue
		}
		rec.SpanStart, rec.SpanEnd = span.Start, span.End
		inst.AddRecord(ont, rec)
	}
	return inst
}

// PopulateInstance loads a model instance into the ontology's generated
// database scheme. The logical scheme marks one-to-one columns required,
// but population is best-effort (the paper's recognizers miss ~10% of
// fields), so physical columns other than the key accept NULL; the missing
// values remain visible as violations on the instance.
func PopulateInstance(ont *ontology.Ontology, inst *objrel.Instance) (*reldb.DB, error) {
	scheme := ont.Scheme()
	db := reldb.New()
	for _, spec := range scheme.Tables() {
		s := reldb.Schema{Table: spec.Name, Key: spec.Key}
		for _, c := range spec.Columns {
			nullable := !contains(spec.Key, c.Name)
			s.Columns = append(s.Columns, reldb.Column{Name: c.Name, Type: c.Type, Nullable: nullable})
		}
		if err := db.Create(s); err != nil {
			return nil, fmt.Errorf("dbgen: %w", err)
		}
	}

	idCol := scheme.Entity.Columns[0].Name
	for _, rec := range inst.Records {
		id := strconv.Itoa(rec.ID)
		vals := map[string]reldb.Value{idCol: reldb.V(id)}
		for set, b := range rec.Single {
			vals[set] = reldb.V(b.Value)
		}
		if err := db.Insert(scheme.Entity.Name, vals); err != nil {
			return nil, fmt.Errorf("dbgen: entity row: %w", err)
		}
		for set, bindings := range rec.Many {
			tbl := scheme.Entity.Name + "_" + set
			for _, b := range bindings {
				err := db.Insert(tbl, map[string]reldb.Value{
					idCol: reldb.V(id),
					set:   reldb.V(b.Value),
				})
				if err != nil {
					return nil, fmt.Errorf("dbgen: many row: %w", err)
				}
			}
		}
	}
	return db, nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// buildRecord correlates the span's Data-Record-Table entries into a record
// instance. filled counts the one-to-one fields that received a value — the
// record-acceptance signal.
func buildRecord(ont *ontology.Ontology, entries []recognizer.Entry) (rec *objrel.RecordInstance, filled int) {
	rec = &objrel.RecordInstance{
		Single: map[string]objrel.Binding{},
		Many:   map[string][]objrel.Binding{},
	}
	// claimed marks constants already attributed, keyed by frame type and
	// position, so two same-typed fields (birth and death dates) never
	// claim the same constant.
	claimed := map[string]bool{}

	for _, set := range ont.ObjectSets {
		switch set.Cardinality {
		case ontology.Many:
			seen := map[string]bool{}
			for _, e := range entries {
				if e.ObjectSet == set.Name && !seen[e.String] {
					seen[e.String] = true
					rec.Many[set.Name] = append(rec.Many[set.Name], objrel.Binding{
						ObjectSet: set.Name, Value: e.String, Pos: e.Pos,
						Provenance: objrel.Positional,
					})
				}
			}
		default:
			b, ok := extractSingle(set, entries, claimed)
			if !ok {
				continue
			}
			rec.Single[set.Name] = b
			if set.Cardinality == ontology.OneToOne {
				filled++
			}
		}
	}
	return rec, filled
}

func claimKey(typ string, pos int) string { return typ + "@" + strconv.Itoa(pos) }

// extractSingle finds the binding for a single-valued object set within one
// record's entries.
func extractSingle(set *ontology.ObjectSet, entries []recognizer.Entry, claimed map[string]bool) (objrel.Binding, bool) {
	findKeyword := func() (recognizer.Entry, bool) {
		for _, e := range entries {
			if e.ObjectSet == set.Name && e.Kind == ontology.KeywordRule {
				return e, true
			}
		}
		return recognizer.Entry{}, false
	}
	firstConstantAfter := func(from int, limit int) (recognizer.Entry, bool) {
		for _, e := range entries {
			if e.ObjectSet != set.Name || e.Kind != ontology.ConstantRule {
				continue
			}
			if e.Pos < from || (limit > 0 && e.Pos-from > limit) {
				continue
			}
			if claimed[claimKey(set.Frame.Type, e.Pos)] {
				continue
			}
			return e, true
		}
		return recognizer.Entry{}, false
	}
	bind := func(e recognizer.Entry, prov objrel.Provenance) (objrel.Binding, bool) {
		if prov != objrel.KeywordOnly {
			claimed[claimKey(set.Frame.Type, e.Pos)] = true
		}
		return objrel.Binding{
			ObjectSet: set.Name, Value: e.String, Pos: e.Pos, Provenance: prov,
		}, true
	}

	switch {
	case set.HasKeywords() && set.HasValues():
		kw, ok := findKeyword()
		if !ok {
			// No keyword in this record: fall back to the first unclaimed
			// constant. Extraction is best-effort — the paper's recognizers
			// report recall near 90%, not 100%.
			if c, ok := firstConstantAfter(0, 0); ok {
				return bind(c, objrel.Positional)
			}
			return objrel.Binding{}, false
		}
		if c, ok := firstConstantAfter(kw.End, KeywordWindow); ok {
			return bind(c, objrel.KeywordAnchored)
		}
		// Keyword present but no nearby constant: the keyword itself is
		// evidence of the field.
		return bind(kw, objrel.KeywordOnly)
	case set.HasKeywords():
		kw, ok := findKeyword()
		if !ok {
			return objrel.Binding{}, false
		}
		return bind(kw, objrel.KeywordOnly)
	default: // values only
		if c, ok := firstConstantAfter(0, 0); ok {
			return bind(c, objrel.Positional)
		}
		return objrel.Binding{}, false
	}
}
