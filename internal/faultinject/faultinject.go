// Package faultinject is a test-only fault-injection harness for the
// record-boundary pipeline. Production code carries named hook points —
// cheap nil-receiver no-ops unless a test wires a *Set through
// core.Options.Faults (or httpapi.Config.Faults) — and chaos tests arm those
// points with panics, delays, and forced errors to prove the process
// degrades gracefully instead of crashing, hanging, or leaking goroutines.
//
// Hook-point names are path-like strings owned by the package that fires
// them; the catalog lives in docs/ROBUSTNESS.md. Current points:
//
//	core/parse              before the tag tree is built
//	htmlparse/arena         at the head of each arena-backed parse, before
//	                        any arena memory is touched (an armed panic
//	                        proves a mid-parse failure still repools the
//	                        dirty arena)
//	core/heuristic/<NAME>   inside each heuristic's goroutine, before Rank
//	core/combine            before certainty combination
//	recognizer/chunk        per text chunk scanned by the recognizer
//	httpapi/discover        at the head of every discover (incl. batch docs)
//	pipeline/attempt        before each bulk-engine attempt
//	cluster/route           at the head of every cluster routing decision
//	cluster/peer            before each peer attempt (any peer)
//	cluster/peer/<NAME>     before each attempt on the named peer
//	cluster/hedge           when a hedged second attempt is about to launch
//	                        (an armed error suppresses the hedge)
//	template/lookup         before each wrapper-store lookup (an armed error
//	                        degrades the hit to a miss)
//	template/publish        before each wrapper delivery to a remote peer
//	journal/compact         between writing a journal's compacted temp file
//	                        and renaming it into place (an armed panic
//	                        simulates a crash mid-compaction)
//	membership/heartbeat    before each outbound gossip heartbeat (an armed
//	                        error drops the heartbeat — a partition as seen
//	                        from both sides)
//	membership/transfer     before each state-transfer pull attempt from a
//	                        warmup source (an armed error fails the joiner
//	                        over to its next ring neighbor)
//
// A Fault can combine a delay with a forced error; Panic takes precedence
// over Err. Delays honor the context passed to FireCtx, so an injected slow
// stage still unblocks promptly when the caller cancels — exactly the
// behavior the cancellation chaos tests need.
package faultinject

import (
	"context"
	"sync"
	"time"
)

// Fault describes what happens when an armed hook point fires.
type Fault struct {
	// Panic, when non-empty, makes the hook point panic with this message.
	Panic string
	// Delay sleeps before returning (interruptible by the FireCtx context).
	Delay time.Duration
	// Err is returned from Fire/FireCtx; hook points that can fail
	// propagate it as if the guarded operation had failed.
	Err error
	// Times limits how many firings consume this fault; 0 means unlimited.
	Times int
}

// Set is a collection of armed faults keyed by hook-point name, plus firing
// counts for every point that was ever reached (armed or not). A nil *Set is
// a valid no-op: Fire returns nil immediately, which is the production
// configuration.
type Set struct {
	mu     sync.Mutex
	faults map[string]*Fault
	fired  map[string]int
}

// New returns an empty, disarmed set.
func New() *Set {
	return &Set{faults: make(map[string]*Fault), fired: make(map[string]int)}
}

// Inject arms (or replaces) the fault at the named hook point.
func (s *Set) Inject(point string, f Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults[point] = &f
}

// Remove disarms the named hook point; firing counts are preserved.
func (s *Set) Remove(point string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.faults, point)
}

// Reset disarms every hook point; firing counts are preserved.
func (s *Set) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = make(map[string]*Fault)
}

// Fired returns how many times the named hook point has been reached —
// whether or not a fault was armed there — making it a cheap probe for "did
// this code path run" assertions in chaos tests.
func (s *Set) Fired(point string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[point]
}

// Fire is FireCtx with a background context (delays are uninterruptible).
func (s *Set) Fire(point string) error {
	return s.FireCtx(context.Background(), point)
}

// FireCtx triggers the named hook point: it records the firing, then applies
// the armed fault, if any — sleeping Delay (cut short by ctx), panicking
// with Panic, or returning Err. With no fault armed it only counts and
// returns nil. A nil receiver does nothing and returns nil.
func (s *Set) FireCtx(ctx context.Context, point string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.fired[point]++
	f := s.faults[point]
	var fault Fault
	if f != nil {
		fault = *f
		if f.Times > 0 {
			f.Times--
			if f.Times == 0 {
				delete(s.faults, point)
			}
		}
	}
	s.mu.Unlock()
	if f == nil {
		return nil
	}

	if fault.Delay > 0 {
		t := time.NewTimer(fault.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if fault.Panic != "" {
		panic("faultinject: " + fault.Panic)
	}
	return fault.Err
}
