package faultinject

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSetIsNoOp(t *testing.T) {
	var s *Set
	if err := s.Fire("anything"); err != nil {
		t.Fatalf("nil set Fire = %v", err)
	}
	if n := s.Fired("anything"); n != 0 {
		t.Fatalf("nil set Fired = %d", n)
	}
}

func TestUnarmedPointCountsAndReturnsNil(t *testing.T) {
	s := New()
	if err := s.Fire("p"); err != nil {
		t.Fatalf("unarmed Fire = %v", err)
	}
	if n := s.Fired("p"); n != 1 {
		t.Fatalf("Fired = %d, want 1", n)
	}
}

func TestInjectedError(t *testing.T) {
	s := New()
	boom := errors.New("boom")
	s.Inject("p", Fault{Err: boom})
	if err := s.Fire("p"); !errors.Is(err, boom) {
		t.Fatalf("Fire = %v, want boom", err)
	}
}

func TestInjectedPanic(t *testing.T) {
	s := New()
	s.Inject("p", Fault{Panic: "kaboom"})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "kaboom") {
			t.Fatalf("panic value = %v", r)
		}
	}()
	_ = s.Fire("p")
}

func TestDelayHonorsContext(t *testing.T) {
	s := New()
	s.Inject("p", Fault{Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.FireCtx(ctx, "p") }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("FireCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FireCtx did not return after cancel")
	}
}

func TestTimesLimitsFirings(t *testing.T) {
	s := New()
	boom := errors.New("boom")
	s.Inject("p", Fault{Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := s.Fire("p"); !errors.Is(err, boom) {
			t.Fatalf("firing %d = %v, want boom", i, err)
		}
	}
	if err := s.Fire("p"); err != nil {
		t.Fatalf("exhausted fault still fires: %v", err)
	}
	if n := s.Fired("p"); n != 3 {
		t.Fatalf("Fired = %d, want 3", n)
	}
}

func TestRemoveAndReset(t *testing.T) {
	s := New()
	s.Inject("a", Fault{Err: errors.New("x")})
	s.Inject("b", Fault{Err: errors.New("y")})
	s.Remove("a")
	if err := s.Fire("a"); err != nil {
		t.Fatalf("removed fault fired: %v", err)
	}
	s.Reset()
	if err := s.Fire("b"); err != nil {
		t.Fatalf("reset fault fired: %v", err)
	}
	if s.Fired("a") != 1 || s.Fired("b") != 1 {
		t.Fatal("Reset should preserve firing counts")
	}
}

func TestConcurrentFire(t *testing.T) {
	s := New()
	s.Inject("p", Fault{Err: errors.New("e"), Times: 50})
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Fire("p")
		}()
	}
	wg.Wait()
	if n := s.Fired("p"); n != 100 {
		t.Fatalf("Fired = %d, want 100", n)
	}
}
