package wrapper_test

import (
	"fmt"

	"repro/internal/ontology"
	"repro/internal/wrapper"
)

// Learn a wrapper from sample pages of one site, then apply it to a new
// page without re-running the heuristics.
func ExampleLearn() {
	page := func(names ...string) string {
		html := "<html><body><div>"
		for _, n := range names {
			html += "<hr><b>" + n + "</b> died on March 3, 1998. " +
				"Funeral services at <b>MEMORIAL CHAPEL</b>. Interment follows. "
		}
		return html + "<hr></div></body></html>"
	}
	samples := []string{
		page("Ada Alpha", "Bo Beta", "Cy Gamma"),
		page("Di Delta", "Ed Epsilon", "Fay Zeta"),
	}
	w, err := wrapper.Learn(samples, ontology.Builtin("obituary"))
	if err != nil {
		panic(err)
	}
	fmt.Println("separator:", w.Separator, "agreement:", w.Agreement)

	records, err := w.Apply(page("Gus Eta", "Hal Theta"))
	if err != nil {
		panic(err)
	}
	fmt.Println("records:", len(records))
	// Output:
	// separator: hr agreement: 1
	// records: 2
}
