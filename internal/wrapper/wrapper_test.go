package wrapper

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// samplesFor generates n training documents for a site.
func samplesFor(s *corpus.Site, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s.Generate(i).HTML
	}
	return out
}

func TestLearnFromConsistentSite(t *testing.T) {
	for _, d := range corpus.AllDomains {
		site := corpus.TestSites(d)[0]
		w, err := Learn(samplesFor(site, 5), d.Ontology())
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		truth := site.Profile.Truth()
		ok := false
		for _, tag := range truth {
			if w.Separator == tag {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: learned separator %q not in truth %v", d, w.Separator, truth)
		}
		if w.Agreement != 1.0 {
			t.Errorf("%s: agreement = %v, want 1.0 on a consistent site", d, w.Agreement)
		}
		if w.Confidence < 0.9 {
			t.Errorf("%s: confidence = %v, suspiciously low", d, w.Confidence)
		}
		if w.SampleSize != 5 {
			t.Errorf("%s: sample size = %d", d, w.SampleSize)
		}
	}
}

func TestApplyToUnseenDocuments(t *testing.T) {
	site := corpus.TrainingSites(corpus.Obituaries)[0] // Salt Lake Tribune
	w, err := Learn(samplesFor(site, 3), corpus.Obituaries.Ontology())
	if err != nil {
		t.Fatal(err)
	}
	// Apply to documents not in the training sample.
	for idx := 10; idx < 14; idx++ {
		doc := site.Generate(idx)
		recs, err := w.Apply(doc.HTML)
		if err != nil {
			t.Fatalf("doc %d: %v", idx, err)
		}
		// Delimited layout: one chunk per record (leading header chunk is
		// outside the container here, trailing separator chunk is empty).
		if len(recs) != doc.Records {
			t.Errorf("doc %d: %d records from wrapper, generator planted %d",
				idx, len(recs), doc.Records)
		}
	}
}

func TestApplyDetectsDrift(t *testing.T) {
	site := corpus.TrainingSites(corpus.Obituaries)[0] // hr-delimited
	w, err := Learn(samplesFor(site, 3), corpus.Obituaries.Ontology())
	if err != nil {
		t.Fatal(err)
	}
	// The "redesigned" site now uses table rows: hr is gone.
	redesigned := corpus.TrainingSites(corpus.Obituaries)[4] // Seattle Times, wrapped
	_, err = w.Apply(redesigned.Generate(0).HTML)
	if !errors.Is(err, ErrDrift) {
		t.Errorf("err = %v, want ErrDrift", err)
	}
}

func TestLearnDisagreement(t *testing.T) {
	// Half the "site" uses hr-delimited pages, half uses table rows: no
	// 75% majority.
	hrSite := corpus.TrainingSites(corpus.Obituaries)[0]
	trSite := corpus.TrainingSites(corpus.Obituaries)[4]
	samples := []string{
		hrSite.Generate(0).HTML, hrSite.Generate(1).HTML,
		trSite.Generate(0).HTML, trSite.Generate(1).HTML,
	}
	_, err := Learn(samples, corpus.Obituaries.Ontology())
	if !errors.Is(err, ErrDisagreement) {
		t.Errorf("err = %v, want ErrDisagreement", err)
	}
}

func TestLearnNoSamples(t *testing.T) {
	if _, err := Learn(nil, nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestLearnWithoutOntology(t *testing.T) {
	site := corpus.TestSites(corpus.CarAds)[2] // wrapped table rows
	w, err := Learn(samplesFor(site, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.Separator != "tr" && w.Separator != "td" {
		t.Errorf("separator = %q", w.Separator)
	}
}

func TestWrapperString(t *testing.T) {
	w := &Wrapper{Separator: "hr", Confidence: 0.999, Agreement: 1, SampleSize: 5}
	s := w.String()
	if !strings.Contains(s, "<hr>") || !strings.Contains(s, "n=5") {
		t.Errorf("String = %q", s)
	}
}
