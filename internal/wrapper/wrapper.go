// Package wrapper turns per-document record-boundary discovery into a
// per-site wrapper — the artifact the paper's surrounding research program
// builds (§1: "to structure Web data ... one of the most promising
// approaches is to build wrappers for Web documents").
//
// Learn runs the Record-Boundary Discovery Algorithm over several sample
// documents from one site and, when the discovered separators agree, emits
// a Wrapper that applies to further documents from the same site without
// re-running the heuristics. Apply verifies the wrapper still fits (the
// separator must still be a candidate tag of the highest-fan-out subtree)
// and reports drift otherwise — sites redesign, wrappers rot.
package wrapper

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/tagtree"
)

// Wrapper is a learned site wrapper.
type Wrapper struct {
	// Separator is the site's record-separator tag.
	Separator string
	// Ontology is the application ontology the wrapper was learned with
	// (may be nil when learned structurally only).
	Ontology *ontology.Ontology
	// Confidence is the mean compound certainty factor of the separator
	// across the training sample.
	Confidence float64
	// Agreement is the fraction of training documents whose discovered
	// separator equals Separator.
	Agreement float64
	// SampleSize is the number of training documents.
	SampleSize int
}

// MinAgreement is the training-sample agreement Learn requires before it
// trusts a separator for the whole site.
const MinAgreement = 0.75

// ErrNoSamples is returned by Learn with an empty training set.
var ErrNoSamples = errors.New("wrapper: no sample documents")

// ErrDisagreement is returned when the sample documents do not agree on a
// separator — the "site" probably mixes layouts.
var ErrDisagreement = errors.New("wrapper: sample documents disagree on the separator")

// ErrDrift is returned by Apply when the document no longer matches the
// wrapper (site redesign).
var ErrDrift = errors.New("wrapper: document does not match the learned wrapper")

// Learn discovers the record separator on each sample document and returns
// a wrapper when at least MinAgreement of them agree on the same tag.
func Learn(samples []string, ont *ontology.Ontology) (*Wrapper, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	votes := map[string]int{}
	cfSum := map[string]float64{}
	for i, doc := range samples {
		res, err := core.Discover(doc, core.Options{Ontology: ont})
		if err != nil {
			return nil, fmt.Errorf("wrapper: sample %d: %w", i, err)
		}
		votes[res.Separator]++
		cfSum[res.Separator] += res.Scores[0].CF
	}
	// Majority tag, ties broken by name for determinism.
	tags := make([]string, 0, len(votes))
	for t := range votes {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool {
		if votes[tags[i]] != votes[tags[j]] {
			return votes[tags[i]] > votes[tags[j]]
		}
		return tags[i] < tags[j]
	})
	best := tags[0]
	agreement := float64(votes[best]) / float64(len(samples))
	if agreement < MinAgreement {
		return nil, fmt.Errorf("%w: best tag %q won only %.0f%% of %d samples",
			ErrDisagreement, best, agreement*100, len(samples))
	}
	return &Wrapper{
		Separator:  best,
		Ontology:   ont,
		Confidence: cfSum[best] / float64(votes[best]),
		Agreement:  agreement,
		SampleSize: len(samples),
	}, nil
}

// Apply splits a new document from the wrapped site into records using the
// learned separator directly — no heuristic voting. It returns ErrDrift
// when the separator is no longer a candidate tag of the document's
// highest-fan-out subtree, the signal that the site changed its layout.
func (w *Wrapper) Apply(doc string) ([]core.Record, error) {
	tree := tagtree.Parse(doc)
	hf := tree.HighestFanOut()
	found := false
	for _, c := range tagtree.Candidates(hf, tagtree.DefaultCandidateThreshold) {
		if c.Name == w.Separator {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %q is not a candidate separator anymore", ErrDrift, w.Separator)
	}
	res := &core.Result{Separator: w.Separator, Tree: tree, Subtree: hf}
	return core.Split(doc, res), nil
}

// String summarizes the wrapper.
func (w *Wrapper) String() string {
	return fmt.Sprintf("wrapper{sep=<%s> conf=%.2f%% agree=%.0f%% n=%d}",
		w.Separator, w.Confidence*100, w.Agreement*100, w.SampleSize)
}
