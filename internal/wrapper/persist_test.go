package wrapper

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/ontology"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	site := corpus.TrainingSites(corpus.Obituaries)[0]
	w, err := Learn(samplesFor(site, 3), ontology.Builtin("obituary"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Separator != w.Separator || loaded.Confidence != w.Confidence ||
		loaded.Agreement != w.Agreement || loaded.SampleSize != w.SampleSize {
		t.Errorf("round trip changed fields: %+v vs %+v", loaded, w)
	}
	if loaded.Ontology != ontology.Builtin("obituary") {
		t.Error("built-in ontology reference not restored")
	}
	// The loaded wrapper must still apply.
	recs, err := loaded.Apply(site.Generate(9).HTML)
	if err != nil || len(recs) == 0 {
		t.Errorf("loaded wrapper apply: %d records, err %v", len(recs), err)
	}
}

func TestLoadWithCustomOntology(t *testing.T) {
	custom := ontology.MustParse("ontology C\nentity C\nobject A : many {\nkeyword `k`\n}")
	w := &Wrapper{Separator: "hr", Ontology: custom, Confidence: 0.9, Agreement: 1, SampleSize: 2}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Custom ontologies do not serialize; re-attach at load.
	loaded, err := LoadWithOntology(&buf, custom)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ontology != custom {
		t.Error("custom ontology not attached")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":99,"separator":"hr"}`)); err == nil {
		t.Error("unknown version should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("missing separator should fail")
	}
}

// TestLoadCorruptInputs pins the typed-error contract: a truncated or torn
// save — and any other undecodable input — fails with ErrCorrupt and never
// yields a partial wrapper, mirroring the checkpoint journal's torn-write
// handling.
func TestLoadCorruptInputs(t *testing.T) {
	w := &Wrapper{Separator: "hr", Confidence: 0.99, Agreement: 1, SampleSize: 3}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := strings.TrimRight(buf.String(), "\n")

	// Every truncation of a valid save must fail typed — no strict prefix of
	// the JSON document is a usable wrapper. (Only the encoder's trailing
	// newline is optional, trimmed above.)
	for cut := 0; cut < len(full); cut++ {
		loaded, err := Load(strings.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes loaded silently: %+v", cut, loaded)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d bytes: error %v does not wrap ErrCorrupt", cut, err)
		}
		if loaded != nil {
			t.Fatalf("truncation at %d bytes returned a partial wrapper alongside the error", cut)
		}
	}

	corrupt := []string{
		"",                         // empty file
		"not json",                 // garbage
		`{"version":1,`,            // torn mid-object
		`{"version":1}`,            // decodes but missing separator
		"\x00\x01\x02",             // binary noise
		`[1,2,3]`,                  // wrong JSON shape
		full[:len(full)/2] + "}}}", // torn then overwritten tail
	}
	for i, in := range corrupt {
		if _, err := Load(strings.NewReader(in)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("corrupt input %d: error %v does not wrap ErrCorrupt", i, err)
		}
	}

	// The version check is a compatibility refusal, not corruption.
	if _, err := Load(strings.NewReader(`{"version":99,"separator":"hr"}`)); errors.Is(err, ErrCorrupt) {
		t.Error("unsupported version should not be reported as corruption")
	}
}
