package wrapper

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/ontology"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	site := corpus.TrainingSites(corpus.Obituaries)[0]
	w, err := Learn(samplesFor(site, 3), ontology.Builtin("obituary"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Separator != w.Separator || loaded.Confidence != w.Confidence ||
		loaded.Agreement != w.Agreement || loaded.SampleSize != w.SampleSize {
		t.Errorf("round trip changed fields: %+v vs %+v", loaded, w)
	}
	if loaded.Ontology != ontology.Builtin("obituary") {
		t.Error("built-in ontology reference not restored")
	}
	// The loaded wrapper must still apply.
	recs, err := loaded.Apply(site.Generate(9).HTML)
	if err != nil || len(recs) == 0 {
		t.Errorf("loaded wrapper apply: %d records, err %v", len(recs), err)
	}
}

func TestLoadWithCustomOntology(t *testing.T) {
	custom := ontology.MustParse("ontology C\nentity C\nobject A : many {\nkeyword `k`\n}")
	w := &Wrapper{Separator: "hr", Ontology: custom, Confidence: 0.9, Agreement: 1, SampleSize: 2}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Custom ontologies do not serialize; re-attach at load.
	loaded, err := LoadWithOntology(&buf, custom)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ontology != custom {
		t.Error("custom ontology not attached")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":99,"separator":"hr"}`)); err == nil {
		t.Error("unknown version should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("missing separator should fail")
	}
}
