package wrapper

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ontology"
)

// wireWrapper is the serialized form. The ontology travels as its DSL
// source (or a built-in name), not as compiled regexps.
type wireWrapper struct {
	Version    int     `json:"version"`
	Separator  string  `json:"separator"`
	Ontology   string  `json:"ontology,omitempty"` // built-in name or DSL source
	Confidence float64 `json:"confidence"`
	Agreement  float64 `json:"agreement"`
	SampleSize int     `json:"sample_size"`
}

// wireVersion is the current serialization version.
const wireVersion = 1

// Save writes the wrapper as JSON. The ontology is saved as a built-in
// name when it is one of the built-ins (matched by Name), or as nothing
// otherwise — custom DSL ontologies must be re-supplied at Load via
// LoadWithOntology.
func (w *Wrapper) Save(dst io.Writer) error {
	ww := wireWrapper{
		Version:    wireVersion,
		Separator:  w.Separator,
		Confidence: w.Confidence,
		Agreement:  w.Agreement,
		SampleSize: w.SampleSize,
	}
	if w.Ontology != nil {
		for _, name := range ontology.BuiltinNames() {
			if ontology.Builtin(name) == w.Ontology {
				ww.Ontology = name
			}
		}
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	return enc.Encode(ww)
}

// Load reads a wrapper saved by Save. Built-in ontology references are
// resolved; wrappers saved with a custom ontology load with a nil ontology
// (use LoadWithOntology to re-attach it).
func Load(src io.Reader) (*Wrapper, error) {
	return LoadWithOntology(src, nil)
}

// LoadWithOntology reads a wrapper and attaches the given ontology when the
// saved form carried none.
func LoadWithOntology(src io.Reader, ont *ontology.Ontology) (*Wrapper, error) {
	var ww wireWrapper
	if err := json.NewDecoder(src).Decode(&ww); err != nil {
		return nil, fmt.Errorf("wrapper: decode: %w", err)
	}
	if ww.Version != wireVersion {
		return nil, fmt.Errorf("wrapper: unsupported version %d", ww.Version)
	}
	if ww.Separator == "" {
		return nil, fmt.Errorf("wrapper: missing separator")
	}
	w := &Wrapper{
		Separator:  ww.Separator,
		Ontology:   ont,
		Confidence: ww.Confidence,
		Agreement:  ww.Agreement,
		SampleSize: ww.SampleSize,
	}
	if ww.Ontology != "" {
		if b := ontology.Builtin(ww.Ontology); b != nil {
			w.Ontology = b
		}
	}
	return w, nil
}
