package wrapper

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/ontology"
)

// ErrCorrupt marks a saved wrapper that cannot be decoded into a usable
// state: truncated or torn JSON (a crash mid-Save), non-JSON bytes, or a
// document missing required fields. Load never returns a partial wrapper —
// callers either get a complete one or an error matching errors.Is(err,
// ErrCorrupt), mirroring the torn-write handling of the bulk checkpoint
// journal and the template store.
var ErrCorrupt = errors.New("wrapper: corrupt saved wrapper")

// wireWrapper is the serialized form. The ontology travels as its DSL
// source (or a built-in name), not as compiled regexps.
type wireWrapper struct {
	Version    int     `json:"version"`
	Separator  string  `json:"separator"`
	Ontology   string  `json:"ontology,omitempty"` // built-in name or DSL source
	Confidence float64 `json:"confidence"`
	Agreement  float64 `json:"agreement"`
	SampleSize int     `json:"sample_size"`
}

// wireVersion is the current serialization version.
const wireVersion = 1

// Save writes the wrapper as JSON. The ontology is saved as a built-in
// name when it is one of the built-ins (matched by Name), or as nothing
// otherwise — custom DSL ontologies must be re-supplied at Load via
// LoadWithOntology.
func (w *Wrapper) Save(dst io.Writer) error {
	ww := wireWrapper{
		Version:    wireVersion,
		Separator:  w.Separator,
		Confidence: w.Confidence,
		Agreement:  w.Agreement,
		SampleSize: w.SampleSize,
	}
	if w.Ontology != nil {
		for _, name := range ontology.BuiltinNames() {
			if ontology.Builtin(name) == w.Ontology {
				ww.Ontology = name
			}
		}
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	return enc.Encode(ww)
}

// Load reads a wrapper saved by Save. Built-in ontology references are
// resolved; wrappers saved with a custom ontology load with a nil ontology
// (use LoadWithOntology to re-attach it).
func Load(src io.Reader) (*Wrapper, error) {
	return LoadWithOntology(src, nil)
}

// LoadWithOntology reads a wrapper and attaches the given ontology when the
// saved form carried none.
func LoadWithOntology(src io.Reader, ont *ontology.Ontology) (*Wrapper, error) {
	var ww wireWrapper
	if err := json.NewDecoder(src).Decode(&ww); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	if ww.Version != wireVersion {
		return nil, fmt.Errorf("wrapper: unsupported version %d", ww.Version)
	}
	if ww.Separator == "" {
		return nil, fmt.Errorf("%w: missing separator", ErrCorrupt)
	}
	w := &Wrapper{
		Separator:  ww.Separator,
		Ontology:   ont,
		Confidence: ww.Confidence,
		Agreement:  ww.Agreement,
		SampleSize: ww.SampleSize,
	}
	if ww.Ontology != "" {
		if b := ontology.Builtin(ww.Ontology); b != nil {
			w.Ontology = b
		}
	}
	return w, nil
}
