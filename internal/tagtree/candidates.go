package tagtree

import "sort"

// DefaultCandidateThreshold is the paper's 10% rule: a start-tag appearing
// fewer than threshold × (total tags in the subtree) times is irrelevant.
const DefaultCandidateThreshold = 0.10

// Candidate is a start-tag eligible to be the record separator, with its
// appearance count inside the highest-fan-out subtree.
type Candidate struct {
	Name  string
	Count int
}

// TagCounts returns the number of appearances of each start-tag name in the
// subtree rooted at n, excluding n itself.
func TagCounts(n *Node) map[string]int {
	counts := make(map[string]int)
	n.Walk(func(m *Node) bool {
		if m != n {
			counts[m.Name]++
		}
		return true
	})
	return counts
}

// Candidates partitions the start-tags of the subtree rooted at n into
// candidate separator tags and irrelevant tags, per Section 3: a tag is
// irrelevant when its appearance count is below threshold × (total number
// of tags in the subtree). Pass DefaultCandidateThreshold for the paper's
// 10% rule. The result is sorted by descending count, ties broken by name,
// so it is deterministic.
func Candidates(n *Node, threshold float64) []Candidate {
	counts := TagCounts(n)
	total := n.SubtreeTagCount()
	cutoff := threshold * float64(total)
	out := make([]Candidate, 0, len(counts))
	for name, c := range counts {
		if float64(c) >= cutoff {
			out = append(out, Candidate{Name: name, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Occurrences returns the byte offsets (in the original document) of every
// start-tag with the given name inside the subtree rooted at n, in document
// order. These are the partition points used to split the document into
// records once the separator tag is chosen.
func Occurrences(t *Tree, n *Node, name string) []int {
	var out []int
	for _, ev := range t.SubtreeEvents(n) {
		if ev.Kind == EventStart && ev.Node != n && ev.Node.Name == name {
			out = append(out, ev.Pos)
		}
	}
	return out
}
