package tagtree

import (
	"testing"

	"repro/internal/htmlparse"
)

// FuzzParse: building a tag tree from arbitrary bytes must not panic, the
// event stream must balance, and re-parsing the patched document must give
// an Equal tree (the Appendix A equivalence).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><hr><b>A</b><hr></body></html>",
		"<table><tr><td>a<td>b<tr><td>c</table>",
		"</b>orphan<p>one<p>two",
		"<ul><li>x<li>y</ul>",
		"<div><b>bold<i>nested</div>",
		"text <br> only",
		"<!-- c --><p>x</p>",
		"<b><b><b></b>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tree := Parse(s)
		depth := 0
		for _, ev := range tree.Events {
			switch ev.Kind {
			case EventStart:
				if !htmlparse.IsVoid(ev.Node.Name) {
					depth++
				}
			case EventEnd:
				depth--
				if depth < 0 {
					t.Fatal("unbalanced event stream")
				}
			}
		}
		if depth != 0 {
			t.Fatalf("event stream left %d elements open", depth)
		}
		if !Equal(tree, Parse(PatchDocument(s))) {
			t.Fatal("patched-document tree differs from direct tree")
		}
	})
}

// FuzzParseXML: same crash-freedom and balance for the XML path.
func FuzzParseXML(f *testing.F) {
	for _, s := range []string{
		"<r><a/><b>x</b></r>",
		"<A>x</a>",
		"<![CDATA[<r>]]>",
		"</orphan><r/>",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tree := ParseXML(s)
		depth := 0
		for _, ev := range tree.Events {
			switch ev.Kind {
			case EventStart:
				if ev.Node.lastEvent != ev.Node.firstEvent+1 {
					depth++
				}
			case EventEnd:
				depth--
			}
		}
		if depth != 0 {
			t.Fatalf("XML event stream left %d elements open", depth)
		}
	})
}
