package tagtree

import (
	"context"

	"repro/internal/htmlparse"
)

// ParseXML builds a tag tree from an XML document (the paper's footnote 1
// generalization). XML normalization is stricter than HTML's: there are no
// void elements, no optional end-tags, and no implied closings — emptiness
// comes only from self-closing tags. Mismatched or orphan end-tags are
// still tolerated (discarded or implied-closed) so imperfect feeds parse.
func ParseXML(doc string) *Tree {
	tokens := htmlparse.TokenizeXML(doc)
	return build(NormalizeXML(tokens), func(string) bool { return false })
}

// ParseXMLContext is ParseXML with cancellation and resource limits, the
// XML counterpart of ParseContext.
func ParseXMLContext(ctx context.Context, doc string, lim Limits) (*Tree, error) {
	if err := htmlparse.CheckSize(doc, lim.MaxBytes); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	norm := NormalizeXML(htmlparse.TokenizeXML(doc))
	return buildContext(ctx, norm, func(string) bool { return false }, lim)
}

// NormalizeXML balances an XML token stream: comments, doctypes, and
// processing instructions are discarded; orphan end-tags are dropped; an
// end-tag closes any still-open elements nested inside its match; EOF
// closes everything.
func NormalizeXML(tokens []htmlparse.Token) []htmlparse.Token {
	out, _ := normalizeXMLInto(tokens, make([]htmlparse.Token, 0, len(tokens)), nil)
	return out
}

// normalizeXMLInto is NormalizeXML writing into caller-provided buffers,
// the XML counterpart of normalizeHTMLInto.
func normalizeXMLInto(tokens, out []htmlparse.Token, stack []string) ([]htmlparse.Token, []string) {
	for _, tok := range tokens {
		switch tok.Type {
		case htmlparse.Comment, htmlparse.Doctype:
			continue
		case htmlparse.Text:
			out = append(out, tok)
		case htmlparse.StartTag:
			out = append(out, tok)
			if !tok.SelfClosing {
				stack = append(stack, tok.Name)
			}
		case htmlparse.EndTag:
			match := -1
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i] == tok.Name {
					match = i
					break
				}
			}
			if match < 0 {
				continue
			}
			for len(stack) > match+1 {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				out = append(out, syntheticEnd(top, tok.Pos))
			}
			stack = stack[:len(stack)-1]
			out = append(out, tok)
		}
	}
	end := 0
	if len(tokens) > 0 {
		end = tokens[len(tokens)-1].End
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, syntheticEnd(top, end))
	}
	return out, stack
}
