// Package tagtree implements the paper's Tag-Tree Construction algorithm
// (Appendix A) and the record-group location heuristics of Section 3:
//
//  1. Normalize the raw token stream: discard "useless" tags (comments and
//     end-tags with no corresponding start-tag) and insert every "missing"
//     end-tag, yielding a balanced tag sequence.
//  2. Build the tag tree: one node per region, each node carrying the plain
//     text that lies directly inside its region.
//  3. Locate the highest-fan-out subtree — conjectured to contain the
//     records of interest — and extract the candidate separator tags (tags
//     whose appearance count is at least 10% of the tags in that subtree).
package tagtree

import (
	"repro/internal/htmlparse"
)

// autoClose maps an arriving start-tag name to the set of open tag names it
// implicitly closes when one of them is the innermost open element. This
// encodes the HTML 3.2/4.0 optional-end-tag rules that 1998-era documents
// rely on (<li> items, <p> runs, table cells without </td>). It realizes the
// paper's rule that a region with no end-tag ends "just before the next tag"
// for the tags where that behaviour is standard.
var autoClose = map[string]map[string]bool{
	"li":       {"li": true},
	"p":        {"p": true},
	"dt":       {"dt": true, "dd": true},
	"dd":       {"dt": true, "dd": true},
	"option":   {"option": true},
	"tr":       {"td": true, "th": true, "tr": true},
	"td":       {"td": true, "th": true},
	"th":       {"td": true, "th": true},
	"thead":    {"td": true, "th": true, "tr": true},
	"tbody":    {"td": true, "th": true, "tr": true, "thead": true},
	"tfoot":    {"td": true, "th": true, "tr": true, "tbody": true},
	"colgroup": {"colgroup": true},
}

// tableScoped lists ancestors that stop the implied-close search: an
// arriving <tr> must not close a <td> of an *outer* table.
var tableScoped = map[string]bool{"table": true}

// Normalize converts a raw token stream into a balanced one, per Appendix A
// step 2: comments, doctypes, and orphan end-tags are discarded; missing
// end-tags are inserted (marked Synthetic). Void elements (br, hr, img, ...)
// are emitted as self-contained start-tags with no end-tag. The returned
// stream contains only StartTag, EndTag, and Text tokens, and every non-void
// StartTag has exactly one matching EndTag.
func Normalize(tokens []htmlparse.Token) []htmlparse.Token {
	out, _ := normalizeHTMLInto(tokens, make([]htmlparse.Token, 0, len(tokens)+len(tokens)/4), nil)
	return out
}

// syntheticEnd is the end-tag Normalize inserts for a missing close.
func syntheticEnd(name string, pos int) htmlparse.Token {
	return htmlparse.Token{
		Type: htmlparse.EndTag, Name: name,
		Pos: pos, End: pos, Synthetic: true,
	}
}

// normalizeHTMLInto is Normalize writing into caller-provided buffers (both
// may carry reusable capacity; the arena hot path passes its slabs). It
// returns the filled stream and the (emptied) stack so callers can retain
// their grown capacity. No closures, so a warm caller pays zero allocations.
func normalizeHTMLInto(tokens, out []htmlparse.Token, stack []string) ([]htmlparse.Token, []string) {
	for _, tok := range tokens {
		switch tok.Type {
		case htmlparse.Comment, htmlparse.Doctype:
			// "Useless" tags: discarded entirely.
			continue

		case htmlparse.Text:
			out = append(out, tok)

		case htmlparse.StartTag:
			if htmlparse.IsVoid(tok.Name) {
				t := tok
				t.SelfClosing = true
				out = append(out, t)
				continue
			}
			// Optional-end-tag rule: the arriving tag may implicitly close
			// open elements (e.g. a new <li> closes the previous <li>).
			if closes := autoClose[tok.Name]; closes != nil {
				for len(stack) > 0 {
					top := stack[len(stack)-1]
					if !closes[top] || tableScoped[top] {
						break
					}
					stack = stack[:len(stack)-1]
					out = append(out, syntheticEnd(top, tok.Pos))
				}
			}
			if tok.SelfClosing {
				out = append(out, tok)
				continue
			}
			stack = append(stack, tok.Name)
			out = append(out, tok)

		case htmlparse.EndTag:
			if htmlparse.IsVoid(tok.Name) {
				continue // </br> and friends: orphan by definition.
			}
			// Find the matching open start-tag, if any.
			match := -1
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i] == tok.Name {
					match = i
					break
				}
			}
			if match < 0 {
				continue // end-tag with no corresponding start-tag: useless.
			}
			// Insert missing end-tags for everything opened above the match.
			for len(stack) > match+1 {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				out = append(out, syntheticEnd(top, tok.Pos))
			}
			stack = stack[:len(stack)-1]
			out = append(out, tok)
		}
	}
	// EOF closes everything still open.
	end := 0
	if len(tokens) > 0 {
		end = tokens[len(tokens)-1].End
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, syntheticEnd(top, end))
	}
	return out, stack
}
