package tagtree

import (
	"context"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/htmlparse"
)

// Arena is the per-request scratch for the byte-level hot path: the
// tokenizer slabs (via htmlparse.Arena), the normalized token buffer, node
// blocks, and the children/chunk/event slabs all live here and are reused
// across parses instead of being garbage-collected per document. Acquire one
// with AcquireArena, pass it to ParseArenaContext (or core.Options.Arena),
// and Release it when the request's results have been copied out.
//
// Ownership rules (see docs/PERFORMANCE.md):
//
//   - A Tree built on an arena — its nodes, events, chunks, and attribute
//     windows — is valid only until the arena's next parse or Release.
//     Anything that outlives the request (wire responses, template-store
//     entries, caches) must deep-copy first; every serving layer in this
//     repo already does.
//   - Tree strings alias the input document; the document must stay
//     immutable while the Tree is alive.
//   - An Arena is single-goroutine; give each worker its own.
//
// Release is panic-safe by construction: it is idempotent, so callers hang
// it on a defer and a mid-parse panic (see the htmlparse/arena fault hook)
// still returns the entry to the pool as the stack unwinds.
type Arena struct {
	tok *htmlparse.Arena

	norm  []htmlparse.Token // normalized (balanced) token stream
	stack []string          // normalize's open-element stack

	// Node storage: fixed-size blocks so node pointers stay stable while the
	// arena grows. Node k of a parse lives at blocks[k>>blockShift][k&blockMask];
	// index 0 is the synthetic root.
	blocks    [][]Node
	highNodes int // high-water node count since last scrub, for Release

	// Per-parse slabs. children and chunks are carved into per-node windows
	// between the counting and building passes; events backs Tree.Events.
	children []*Node
	chunks   []Chunk
	events   []Event

	// Counting-pass scratch: childOffs/chunkOffs hold per-node counts during
	// pass 0 and prefix-sum offsets during pass 1 (entry i+1 is node i's
	// window end); seqStack tracks the open node sequence numbers.
	childOffs []int
	chunkOffs []int
	seqStack  []int

	tree     Tree
	released bool
}

const (
	nodeBlockShift = 9
	nodeBlockSize  = 1 << nodeBlockShift // 512 nodes per block
	nodeBlockMask  = nodeBlockSize - 1
)

// Retention bounds: what one pooled arena may keep between requests. A
// pathological document must not pin its peak footprint in the pool forever.
const (
	maxRetainedNodes  = 1 << 15
	maxRetainedTokens = 1 << 16
	maxRetainedSlab   = 1 << 16
)

var arenaPool = sync.Pool{New: func() any { return newArena() }}

func newArena() *Arena {
	return &Arena{tok: htmlparse.NewArena()}
}

// AcquireArena returns a ready arena from the shared pool.
func AcquireArena() *Arena {
	a := arenaPool.Get().(*Arena)
	a.released = false
	return a
}

// Release scrubs document references out of the arena and returns it to the
// pool. It is idempotent: the second and later calls do nothing, so it is
// safe (and intended) to call from a defer that may race a panic path.
func (a *Arena) Release() {
	if a == nil || a.released {
		return
	}
	a.released = true
	a.scrub()
	arenaPool.Put(a)
}

// scrub drops every reference into request documents and trims capacity
// beyond the retention bounds.
func (a *Arena) scrub() {
	a.tok.Trim()
	if cap(a.norm) > maxRetainedTokens {
		a.norm = nil
	} else {
		norm := a.norm[:cap(a.norm)]
		for i := range norm {
			norm[i] = htmlparse.Token{}
		}
		a.norm = a.norm[:0]
	}
	if cap(a.stack) > maxRetainedSlab {
		a.stack = nil
	} else {
		stack := a.stack[:cap(a.stack)]
		for i := range stack {
			stack[i] = ""
		}
		a.stack = a.stack[:0]
	}
	if len(a.blocks)*nodeBlockSize > maxRetainedNodes {
		a.blocks = nil
	} else {
		for k := 0; k < a.highNodes; k++ {
			a.blocks[k>>nodeBlockShift][k&nodeBlockMask] = Node{}
		}
	}
	a.highNodes = 0
	if cap(a.children) > maxRetainedSlab {
		a.children = nil
	} else {
		ch := a.children[:cap(a.children)]
		for i := range ch {
			ch[i] = nil
		}
		a.children = a.children[:0]
	}
	if cap(a.chunks) > maxRetainedSlab {
		a.chunks = nil
	} else {
		ck := a.chunks[:cap(a.chunks)]
		for i := range ck {
			ck[i] = Chunk{}
		}
		a.chunks = a.chunks[:0]
	}
	if cap(a.events) > maxRetainedSlab {
		a.events = nil
	} else {
		ev := a.events[:cap(a.events)]
		for i := range ev {
			ev[i] = Event{}
		}
		a.events = a.events[:0]
	}
	a.childOffs = a.childOffs[:0]
	a.chunkOffs = a.chunkOffs[:0]
	a.seqStack = a.seqStack[:0]
	a.tree = Tree{}
}

// node returns the arena slot for node sequence number k, growing block
// storage as needed (cold path only).
func (a *Arena) node(k int) *Node {
	for len(a.blocks)*nodeBlockSize <= k {
		a.blocks = append(a.blocks, make([]Node, nodeBlockSize))
	}
	return &a.blocks[k>>nodeBlockShift][k&nodeBlockMask]
}

// ensureNodes grows block storage to hold n nodes.
func (a *Arena) ensureNodes(n int) {
	for len(a.blocks)*nodeBlockSize < n {
		a.blocks = append(a.blocks, make([]Node, nodeBlockSize))
	}
}

// capTo returns s truncated to length 0 with capacity at least n.
func capTo[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, 0, n)
	}
	return s[:0]
}

// ParseArena is ParseArenaContext with a background context and no limits.
func ParseArena(doc string, a *Arena) *Tree {
	t, err := ParseArenaContext(context.Background(), doc, Limits{}, a, nil)
	if err != nil {
		// Unreachable: a background context never cancels, zero Limits never
		// trip, and no faults are armed.
		panic("tagtree: arena parse failed without limits: " + err.Error())
	}
	return t
}

// ParseArenaContext is ParseContext on the byte-level hot path: tokens,
// nodes, and event buffers come from the arena, and a warm arena parses
// without allocating. The result is byte-identical to ParseContext (pinned
// by FuzzByteVsStringParse). The htmlparse/arena fault hook fires once per
// parse, before any arena memory is touched. A nil arena falls back to
// ParseContext.
func ParseArenaContext(ctx context.Context, doc string, lim Limits, a *Arena, faults *faultinject.Set) (*Tree, error) {
	if a == nil {
		return ParseContext(ctx, doc, lim)
	}
	if err := htmlparse.CheckSize(doc, lim.MaxBytes); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	toks := a.tok.TokenizeHTML(doc)
	// The hook fires mid-parse — tokenizer slabs already hold this document —
	// so chaos tests prove a panic here still repools a dirty arena.
	if err := faults.FireCtx(ctx, "htmlparse/arena"); err != nil {
		return nil, err
	}
	a.norm, a.stack = normalizeHTMLInto(toks, a.norm[:0], a.stack[:0])
	return a.build(ctx, a.norm, htmlparse.IsVoid, lim)
}

// ParseXMLArenaContext is the XML counterpart of ParseArenaContext,
// byte-identical to ParseXMLContext.
func ParseXMLArenaContext(ctx context.Context, doc string, lim Limits, a *Arena, faults *faultinject.Set) (*Tree, error) {
	if a == nil {
		return ParseXMLContext(ctx, doc, lim)
	}
	if err := htmlparse.CheckSize(doc, lim.MaxBytes); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	toks := a.tok.TokenizeXML(doc)
	if err := faults.FireCtx(ctx, "htmlparse/arena"); err != nil {
		return nil, err
	}
	a.norm, a.stack = normalizeXMLInto(toks, a.norm[:0], a.stack[:0])
	return a.build(ctx, a.norm, neverVoid, lim)
}

var neverVoid = func(string) bool { return false }

// build is buildContext on arena memory: pass 0 counts nodes, per-node
// children/chunks, and events (enforcing ctx and limits in buildContext's
// exact order); the counts become carved sub-slices of the shared slabs; and
// pass 1 re-walks the tokens filling everything in within capacity — zero
// allocations once the arena is warm.
func (a *Arena) build(ctx context.Context, norm []htmlparse.Token, isVoid func(string) bool, lim Limits) (*Tree, error) {
	// Pass 0: counts. seqStack holds open node sequence numbers (root = 0);
	// childOffs/chunkOffs get one entry per node, indexed by sequence.
	a.seqStack = append(a.seqStack[:0], 0)
	a.childOffs = append(a.childOffs[:0], 0)
	a.chunkOffs = append(a.chunkOffs[:0], 0)
	nodes, depth, events := 0, 0, 0
	for i, tok := range norm {
		if i%buildCheckEvery == buildCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		switch tok.Type {
		case htmlparse.Text:
			if tok.Data == "" {
				continue
			}
			a.chunkOffs[a.seqStack[len(a.seqStack)-1]]++
			events++

		case htmlparse.StartTag:
			nodes++
			if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
				return nil, errTooManyNodes(lim.MaxNodes)
			}
			a.childOffs[a.seqStack[len(a.seqStack)-1]]++
			a.childOffs = append(a.childOffs, 0)
			a.chunkOffs = append(a.chunkOffs, 0)
			events++
			if tok.SelfClosing || isVoid(tok.Name) {
				continue
			}
			depth++
			if lim.MaxDepth > 0 && depth > lim.MaxDepth {
				return nil, errTooDeep(lim.MaxDepth)
			}
			a.seqStack = append(a.seqStack, nodes)

		case htmlparse.EndTag:
			if len(a.seqStack) == 1 {
				continue
			}
			events++
			a.seqStack = a.seqStack[:len(a.seqStack)-1]
			depth--
		}
	}

	// Prefix sums: childOffs[s]/chunkOffs[s] become node s's window start;
	// the appended sentinel makes entry s+1 its end.
	coff, koff := 0, 0
	for s := 0; s <= nodes; s++ {
		c := a.childOffs[s]
		a.childOffs[s] = coff
		coff += c
		k := a.chunkOffs[s]
		a.chunkOffs[s] = koff
		koff += k
	}
	a.childOffs = append(a.childOffs, coff)
	a.chunkOffs = append(a.chunkOffs, koff)

	a.ensureNodes(nodes + 1)
	if nodes+1 > a.highNodes {
		a.highNodes = nodes + 1
	}
	a.children = capTo(a.children, coff)
	a.chunks = capTo(a.chunks, koff)
	a.events = capTo(a.events, events)

	// Pass 1: buildContext's exact loop, filling carved windows in place.
	t := &a.tree
	root := a.node(0)
	*root = Node{Name: "#document"}
	root.Children = a.carveChildren(0)
	root.Chunks = a.carveChunks(0)
	t.Root = root
	t.Events = a.events
	cur, seq := root, 0
	for _, tok := range norm {
		switch tok.Type {
		case htmlparse.Text:
			if tok.Data == "" {
				continue
			}
			cur.Chunks = append(cur.Chunks, Chunk{Text: tok.Data, Pos: tok.Pos})
			t.Events = append(t.Events, Event{Kind: EventText, Text: tok.Data, Pos: tok.Pos})

		case htmlparse.StartTag:
			seq++
			n := a.node(seq)
			*n = Node{
				Name:       tok.Name,
				Attrs:      tok.Attrs,
				Parent:     cur,
				StartPos:   tok.Pos,
				EndPos:     tok.End,
				firstEvent: len(t.Events),
			}
			n.Children = a.carveChildren(seq)
			n.Chunks = a.carveChunks(seq)
			cur.Children = append(cur.Children, n)
			t.Events = append(t.Events, Event{Kind: EventStart, Node: n, Pos: tok.Pos})
			if tok.SelfClosing || isVoid(tok.Name) {
				n.lastEvent = len(t.Events)
				continue
			}
			cur = n

		case htmlparse.EndTag:
			if cur == root {
				continue
			}
			t.Events = append(t.Events, Event{Kind: EventEnd, Node: cur, Pos: tok.Pos})
			cur.EndPos = tok.End
			cur.lastEvent = len(t.Events)
			cur = cur.Parent
		}
	}
	root.firstEvent = 0
	root.lastEvent = len(t.Events)
	if n := len(norm); n > 0 {
		root.EndPos = norm[n-1].End
	}
	countSubtreeTags(root)
	return t, nil
}

// carveChildren returns node seq's empty children window inside the shared
// slab; appends stay within its capacity.
func (a *Arena) carveChildren(seq int) []*Node {
	s, e := a.childOffs[seq], a.childOffs[seq+1]
	return a.children[s:s:e]
}

// carveChunks is carveChildren for text chunks.
func (a *Arena) carveChunks(seq int) []Chunk {
	s, e := a.chunkOffs[seq], a.chunkOffs[seq+1]
	return a.chunks[s:s:e]
}
