package tagtree

import (
	"errors"
	"fmt"
)

// Limits bounds the resources one parsed document may consume. The zero
// value imposes no limits, so existing callers are unaffected; servers set
// limits to keep adversarial inputs (pathological nesting, node bombs,
// oversized bodies) from exhausting memory or stack.
type Limits struct {
	// MaxBytes bounds the raw document size; 0 means unlimited. Exceeding
	// it yields htmlparse.ErrTooLarge.
	MaxBytes int
	// MaxDepth bounds element-nesting depth in the built tree; 0 means
	// unlimited. Exceeding it yields ErrTooDeep.
	MaxDepth int
	// MaxNodes bounds the number of element nodes in the built tree; 0
	// means unlimited. Exceeding it yields ErrTooManyNodes.
	MaxNodes int
}

// Sentinel errors for exceeded limits; match with errors.Is. The HTTP layer
// maps both to 422 Unprocessable Entity (the document is well-formed HTTP
// but not a document this service will process).
var (
	ErrTooDeep      = errors.New("tagtree: tag tree exceeds depth limit")
	ErrTooManyNodes = errors.New("tagtree: tag tree exceeds node limit")
)

func errTooDeep(limit int) error {
	return fmt.Errorf("%w (limit %d)", ErrTooDeep, limit)
}

func errTooManyNodes(limit int) error {
	return fmt.Errorf("%w (limit %d)", ErrTooManyNodes, limit)
}
