package tagtree

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/htmlparse"
	"repro/internal/paperdoc"
)

// shape renders a subtree in compact nested-paren notation: name, then
// children inside parens, siblings space-separated.
func shape(n *Node) string {
	var b strings.Builder
	writeShape(&b, n)
	return b.String()
}

func writeShape(b *strings.Builder, n *Node) {
	b.WriteString(n.Name)
	if len(n.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		writeShape(b, c)
	}
	b.WriteByte(')')
}

func TestParseFigure2TreeShape(t *testing.T) {
	tree := Parse(paperdoc.Figure2)
	got := shape(tree.Root)
	if got != paperdoc.TreeShape {
		t.Errorf("tree shape:\n got  %s\n want %s", got, paperdoc.TreeShape)
	}
}

func TestParseFigure2HighestFanOut(t *testing.T) {
	tree := Parse(paperdoc.Figure2)
	hf := tree.HighestFanOut()
	if hf.Name != "td" {
		t.Fatalf("highest-fan-out node = %s, want td", hf.Name)
	}
	if hf.FanOut() != 18 {
		t.Errorf("fan-out = %d, want 18", hf.FanOut())
	}
	if hf.SubtreeTagCount() != 18 {
		t.Errorf("subtree tag count = %d, want 18", hf.SubtreeTagCount())
	}
}

func TestParseFigure2Candidates(t *testing.T) {
	tree := Parse(paperdoc.Figure2)
	hf := tree.HighestFanOut()
	cands := Candidates(hf, DefaultCandidateThreshold)
	want := []Candidate{{"b", 8}, {"br", 5}, {"hr", 4}}
	if len(cands) != len(want) {
		t.Fatalf("candidates = %v, want %v", cands, want)
	}
	for i := range want {
		if cands[i] != want[i] {
			t.Errorf("candidate %d = %v, want %v", i, cands[i], want[i])
		}
	}
}

func TestCandidatesThresholdExcludesRareTags(t *testing.T) {
	// h1 appears once out of 18 tags (5.6% < 10%): irrelevant.
	tree := Parse(paperdoc.Figure2)
	hf := tree.HighestFanOut()
	for _, c := range Candidates(hf, DefaultCandidateThreshold) {
		if c.Name == "h1" {
			t.Errorf("h1 should be irrelevant, got candidate %v", c)
		}
	}
	// With threshold 0, every tag is a candidate.
	all := Candidates(hf, 0)
	if len(all) != 4 {
		t.Errorf("threshold 0 candidates = %v, want 4 tags", all)
	}
}

func TestNormalizeInsertsMissingEndTags(t *testing.T) {
	toks := htmlparse.Tokenize("<div><b>bold<i>both</div>")
	norm := Normalize(toks)
	var ends []string
	synthetic := 0
	for _, tok := range norm {
		if tok.Type == htmlparse.EndTag {
			ends = append(ends, tok.Name)
			if tok.Synthetic {
				synthetic++
			}
		}
	}
	if got, want := strings.Join(ends, " "), "i b div"; got != want {
		t.Errorf("end tags = %q, want %q", got, want)
	}
	if synthetic != 2 {
		t.Errorf("synthetic end tags = %d, want 2 (i and b)", synthetic)
	}
}

func TestNormalizeDiscardsOrphanEndTags(t *testing.T) {
	toks := htmlparse.Tokenize("</b>text</div><p>x</p>")
	norm := Normalize(toks)
	for _, tok := range norm {
		if tok.Type == htmlparse.EndTag && (tok.Name == "b" || tok.Name == "div") {
			t.Errorf("orphan end tag %s survived normalization", tok.Name)
		}
	}
}

func TestNormalizeDiscardsComments(t *testing.T) {
	toks := htmlparse.Tokenize("<p><!-- hidden -->text</p>")
	norm := Normalize(toks)
	for _, tok := range norm {
		if tok.Type == htmlparse.Comment || tok.Type == htmlparse.Doctype {
			t.Errorf("comment survived normalization: %v", tok)
		}
	}
}

func TestNormalizeVoidElements(t *testing.T) {
	toks := htmlparse.Tokenize("<p>a<br>b<hr>c</p>")
	tree := FromTokens(toks)
	p := tree.Root.Find("p")
	if p == nil {
		t.Fatal("no p node")
	}
	if got := shape(p); got != "p(br hr)" {
		t.Errorf("shape = %q, want p(br hr)", got)
	}
}

func TestNormalizeEOFClosesOpenTags(t *testing.T) {
	toks := htmlparse.Tokenize("<html><body><b>unclosed")
	norm := Normalize(toks)
	opens, closes := 0, 0
	for _, tok := range norm {
		switch tok.Type {
		case htmlparse.StartTag:
			if !htmlparse.IsVoid(tok.Name) && !tok.SelfClosing {
				opens++
			}
		case htmlparse.EndTag:
			closes++
		}
	}
	if opens != closes {
		t.Errorf("opens = %d, closes = %d; stream not balanced", opens, closes)
	}
}

func TestAutoCloseListItems(t *testing.T) {
	tree := Parse("<ul><li>one<li>two<li>three</ul>")
	ul := tree.Root.Find("ul")
	if ul == nil {
		t.Fatal("no ul")
	}
	if got := shape(ul); got != "ul(li li li)" {
		t.Errorf("shape = %q, want ul(li li li)", got)
	}
}

func TestAutoCloseParagraphs(t *testing.T) {
	tree := Parse("<body><p>one<p>two<p>three</body>")
	body := tree.Root.Find("body")
	if got := shape(body); got != "body(p p p)" {
		t.Errorf("shape = %q, want body(p p p)", got)
	}
}

func TestAutoCloseTableCells(t *testing.T) {
	tree := Parse("<table><tr><td>a<td>b<tr><td>c</table>")
	table := tree.Root.Find("table")
	if got := shape(table); got != "table(tr(td td) tr(td))" {
		t.Errorf("shape = %q, want table(tr(td td) tr(td))", got)
	}
}

func TestAutoCloseDoesNotCrossTableBoundary(t *testing.T) {
	// The inner table's td must not be closed by the outer table's tr.
	tree := Parse("<table><tr><td><table><tr><td>x</td></tr></table></td></tr><tr><td>y</td></tr></table>")
	table := tree.Root.Find("table")
	if got := shape(table); got != "table(tr(td(table(tr(td)))) tr(td))" {
		t.Errorf("shape = %q", got)
	}
}

func TestNodeText(t *testing.T) {
	tree := Parse("<div>  Hello <b>bold</b>   world  </div>")
	div := tree.Root.Find("div")
	if got := div.Text(); got != "Hello bold world" {
		t.Errorf("Text() = %q, want %q", got, "Hello bold world")
	}
}

func TestNodeTextDocumentOrder(t *testing.T) {
	tree := Parse("<div>a<b>c</b>e<i>g</i>i</div>")
	div := tree.Root.Find("div")
	if got := div.Text(); got != "a c e g i" {
		t.Errorf("Text() = %q, want %q", got, "a c e g i")
	}
}

func TestCollapseSpace(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"   ", ""},
		{"a", "a"},
		{"  a  b  ", "a b"},
		{"a\n\tb\r\nc", "a b c"},
	}
	for _, c := range cases {
		if got := CollapseSpace(c.in); got != c.want {
			t.Errorf("CollapseSpace(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestOccurrences(t *testing.T) {
	doc := "<div><hr>a<hr>b<hr></div>"
	tree := Parse(doc)
	div := tree.Root.Find("div")
	pos := Occurrences(tree, div, "hr")
	if len(pos) != 3 {
		t.Fatalf("occurrences = %v, want 3", pos)
	}
	for i, p := range pos {
		if doc[p:p+4] != "<hr>" {
			t.Errorf("occurrence %d at %d is %q, not <hr>", i, p, doc[p:p+4])
		}
	}
}

func TestSubtreeEventsCoverSubtreeOnly(t *testing.T) {
	tree := Parse("<body>x<div><b>in</b></div>y</body>")
	div := tree.Root.Find("div")
	evs := tree.SubtreeEvents(div)
	for _, ev := range evs {
		if ev.Kind == EventText && (ev.Text == "x" || ev.Text == "y") {
			t.Errorf("subtree events leak outside text %q", ev.Text)
		}
	}
	if len(evs) == 0 || evs[0].Kind != EventStart || evs[0].Node != div {
		t.Errorf("first event should be div start, got %+v", evs)
	}
}

func TestHighestFanOutTieBreaksEarlier(t *testing.T) {
	tree := Parse("<body><div><p>a</p><p>b</p></div><section><p>c</p><p>d</p></section></body>")
	hf := tree.HighestFanOut()
	// body has 2 children, div has 2, section has 2; earliest max (body) wins.
	if hf.Name != "body" {
		t.Errorf("highest fan-out = %s, want body (earliest among ties)", hf.Name)
	}
}

func TestHighestFanOutPrefersElementOverDocumentRoot(t *testing.T) {
	tree := Parse("<p>a</p><p>b</p>") // two top-level elements: root fan-out 2
	hf := tree.HighestFanOut()
	if hf != tree.Root {
		t.Errorf("expected document root when nothing wraps content, got %s", hf.Name)
	}
	tree2 := Parse("<div><p>a</p><p>b</p></div>")
	if hf2 := tree2.HighestFanOut(); hf2.Name != "div" {
		t.Errorf("expected div, got %s", hf2.Name)
	}
}

func TestWalkPrunes(t *testing.T) {
	tree := Parse("<div><a><b>x</b></a><c></c></div>")
	var visited []string
	tree.Root.Walk(func(n *Node) bool {
		visited = append(visited, n.Name)
		return n.Name != "a" // prune under a
	})
	joined := strings.Join(visited, " ")
	if strings.Contains(joined, " b") {
		t.Errorf("walk visited pruned node b: %q", joined)
	}
	if !strings.Contains(joined, "c") {
		t.Errorf("walk missed sibling c: %q", joined)
	}
}

func TestParseEmptyAndTextOnly(t *testing.T) {
	if tree := Parse(""); tree.Root == nil || len(tree.Root.Children) != 0 {
		t.Errorf("empty doc: %+v", tree.Root)
	}
	tree := Parse("just text, no tags at all")
	if len(tree.Root.Children) != 0 {
		t.Errorf("text-only doc should have no element children")
	}
	if got := tree.Root.Text(); got != "just text, no tags at all" {
		t.Errorf("Text() = %q", got)
	}
}

// Property: parsing arbitrary strings never panics and always yields a tree
// whose event stream is balanced (every EventStart of a non-void element has
// a matching EventEnd) and whose node event ranges nest properly.
func TestParseArbitraryInputProperty(t *testing.T) {
	f := func(s string) bool {
		tree := Parse(s)
		depth := 0
		for _, ev := range tree.Events {
			switch ev.Kind {
			case EventStart:
				if !htmlparse.IsVoid(ev.Node.Name) {
					depth++
				}
			case EventEnd:
				depth--
				if depth < 0 {
					return false
				}
			}
		}
		return depth == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: for random tag soup built from a small alphabet, every node's
// event range contains exactly its subtree's events.
func TestEventRangeNestingProperty(t *testing.T) {
	f := func(seed []byte) bool {
		doc := soupFromBytes(seed)
		tree := Parse(doc)
		ok := true
		tree.Root.Walk(func(n *Node) bool {
			first, last := n.EventRange()
			if first < 0 || last > len(tree.Events) || first > last {
				ok = false
				return false
			}
			for _, c := range n.Children {
				cf, cl := c.EventRange()
				if cf < first || cl > last {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// soupFromBytes deterministically renders bytes as messy HTML: a mix of
// start-tags, end-tags (often mismatched), void tags, and text.
func soupFromBytes(seed []byte) string {
	names := []string{"div", "p", "b", "i", "td", "tr", "table", "li", "ul"}
	var b strings.Builder
	for _, c := range seed {
		switch c % 5 {
		case 0:
			b.WriteString("<" + names[int(c/5)%len(names)] + ">")
		case 1:
			b.WriteString("</" + names[int(c/5)%len(names)] + ">")
		case 2:
			b.WriteString("text")
		case 3:
			b.WriteString("<br>")
		default:
			b.WriteString(" more words ")
		}
	}
	return b.String()
}

func BenchmarkParseFigure2(b *testing.B) {
	b.SetBytes(int64(len(paperdoc.Figure2)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(paperdoc.Figure2)
	}
}
