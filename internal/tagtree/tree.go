package tagtree

import (
	"context"
	"strings"

	"repro/internal/htmlparse"
)

// EventKind discriminates the entries of a Tree's linearized event stream.
type EventKind int

// Event kinds.
const (
	// EventStart marks the opening of a node's region.
	EventStart EventKind = iota
	// EventEnd marks the close of a node's region. Void elements emit no
	// EventEnd.
	EventEnd
	// EventText is a run of plain text.
	EventText
)

// Event is one entry of the document-order event stream. The stream lets
// heuristics scan any subtree linearly — the basis of the paper's O(n)
// claims.
type Event struct {
	Kind EventKind
	// Node is the region's node for EventStart and EventEnd.
	Node *Node
	// Text is the decoded character data for EventText.
	Text string
	// Pos is the byte offset in the original document.
	Pos int
}

// Node is one region of the document: a start-tag, the plain text directly
// inside its region, and its nested regions as children.
type Node struct {
	// Name is the lowercased tag name; the synthetic document root is
	// named "#document".
	Name string
	// Attrs are the start-tag's attributes.
	Attrs []htmlparse.Attr
	// Parent is nil for the document root.
	Parent *Node
	// Children are the nested regions in document order.
	Children []*Node
	// Chunks is the plain text lying directly inside this region (not
	// inside any child), in document order.
	Chunks []Chunk
	// StartPos and EndPos delimit the region's byte range in the original
	// document.
	StartPos, EndPos int

	// firstEvent and lastEvent index into Tree.Events: the half-open range
	// [firstEvent, lastEvent) covers this node's EventStart through its
	// EventEnd (or just the EventStart for void elements).
	firstEvent, lastEvent int

	// subtreeTags is the number of start-tags in the subtree rooted here,
	// excluding this node itself.
	subtreeTags int
}

// Chunk is a run of plain text directly inside a region.
type Chunk struct {
	Text string
	Pos  int
}

// Tree is the paper's tag tree: the nested-region structure of a document
// plus a linearized event stream for single-pass heuristics.
type Tree struct {
	// Root is a synthetic "#document" node whose children are the
	// document's top-level regions (normally a single html node).
	Root *Node
	// Events is the full document-order event stream.
	Events []Event
}

// Parse tokenizes, normalizes (Appendix A step 2), and builds the tag tree
// of an HTML document. It never fails: malformed input degrades gracefully.
func Parse(doc string) *Tree {
	return FromTokens(htmlparse.Tokenize(doc))
}

// ParseContext is Parse with cancellation and resource limits: the build
// loop checks ctx periodically so a hung-up caller stops paying for the
// parse, and lim bounds document bytes, nesting depth, and node count with
// the sentinel errors of Limits. A zero lim and background ctx make it
// equivalent to Parse.
func ParseContext(ctx context.Context, doc string, lim Limits) (*Tree, error) {
	if err := htmlparse.CheckSize(doc, lim.MaxBytes); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return buildContext(ctx, Normalize(htmlparse.Tokenize(doc)), htmlparse.IsVoid, lim)
}

// FromTokens builds the tag tree from a pre-tokenized HTML document.
func FromTokens(tokens []htmlparse.Token) *Tree {
	return build(Normalize(tokens), htmlparse.IsVoid)
}

// build constructs a tree from an already-balanced token stream; it cannot
// fail (no context, no limits).
func build(norm []htmlparse.Token, isVoid func(string) bool) *Tree {
	t, err := buildContext(context.Background(), norm, isVoid, Limits{})
	if err != nil {
		// Unreachable: a background context never cancels and zero Limits
		// never trip.
		panic("tagtree: build failed without limits: " + err.Error())
	}
	return t
}

// buildCheckEvery is how many tokens the build loop processes between
// context checks — rare enough to stay off the profile, frequent enough
// that cancellation lands within microseconds on real documents.
const buildCheckEvery = 1024

// buildContext constructs a tree from an already-balanced token stream.
// isVoid reports element names that never have end-tags (HTML's void set;
// always false for XML, where only explicit self-closing counts). The loop
// honors ctx and enforces lim's depth and node bounds as it goes, so a
// pathological document fails fast instead of exhausting memory first.
func buildContext(ctx context.Context, norm []htmlparse.Token, isVoid func(string) bool, lim Limits) (*Tree, error) {
	t := &Tree{Root: &Node{Name: "#document"}}
	cur := t.Root
	depth, nodes := 0, 0
	for i, tok := range norm {
		if i%buildCheckEvery == buildCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		switch tok.Type {
		case htmlparse.Text:
			if tok.Data == "" {
				continue
			}
			cur.Chunks = append(cur.Chunks, Chunk{Text: tok.Data, Pos: tok.Pos})
			t.Events = append(t.Events, Event{Kind: EventText, Text: tok.Data, Pos: tok.Pos})

		case htmlparse.StartTag:
			nodes++
			if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
				return nil, errTooManyNodes(lim.MaxNodes)
			}
			n := &Node{
				Name:       tok.Name,
				Attrs:      tok.Attrs,
				Parent:     cur,
				StartPos:   tok.Pos,
				EndPos:     tok.End,
				firstEvent: len(t.Events),
			}
			cur.Children = append(cur.Children, n)
			t.Events = append(t.Events, Event{Kind: EventStart, Node: n, Pos: tok.Pos})
			if tok.SelfClosing || isVoid(tok.Name) {
				n.lastEvent = len(t.Events)
				continue
			}
			depth++
			if lim.MaxDepth > 0 && depth > lim.MaxDepth {
				return nil, errTooDeep(lim.MaxDepth)
			}
			cur = n

		case htmlparse.EndTag:
			// Normalize guarantees balance, so this matches cur.
			if cur == t.Root {
				continue
			}
			t.Events = append(t.Events, Event{Kind: EventEnd, Node: cur, Pos: tok.Pos})
			cur.EndPos = tok.End
			cur.lastEvent = len(t.Events)
			cur = cur.Parent
			depth--
		}
	}
	t.Root.firstEvent = 0
	t.Root.lastEvent = len(t.Events)
	if n := len(norm); n > 0 {
		t.Root.EndPos = norm[n-1].End
	}
	countSubtreeTags(t.Root)
	return t, nil
}

// countSubtreeTags fills in subtreeTags bottom-up.
func countSubtreeTags(n *Node) int {
	total := 0
	for _, c := range n.Children {
		total += 1 + countSubtreeTags(c)
	}
	n.subtreeTags = total
	return total
}

// FanOut returns the node's number of immediate children.
func (n *Node) FanOut() int { return len(n.Children) }

// SubtreeTagCount returns the number of start-tags in the subtree rooted at
// n, excluding n itself.
func (n *Node) SubtreeTagCount() int { return n.subtreeTags }

// EventRange returns the half-open [first, last) index range of n's events
// in the owning Tree's event stream.
func (n *Node) EventRange() (first, last int) { return n.firstEvent, n.lastEvent }

// SubtreeEvents returns the slice of the tree's event stream covering the
// subtree rooted at n (including n's own start event).
func (t *Tree) SubtreeEvents(n *Node) []Event {
	return t.Events[n.firstEvent:n.lastEvent]
}

// Text returns all plain text in the subtree rooted at n, in document
// order, with chunks joined by single spaces and whitespace collapsed.
func (n *Node) Text() string {
	var parts []string
	n.walkText(&parts)
	return strings.Join(parts, " ")
}

func (n *Node) walkText(parts *[]string) {
	// Merge chunks and children in document order by position.
	ci, ki := 0, 0
	for ci < len(n.Children) || ki < len(n.Chunks) {
		if ki >= len(n.Chunks) || (ci < len(n.Children) && n.Children[ci].StartPos < n.Chunks[ki].Pos) {
			n.Children[ci].walkText(parts)
			ci++
		} else {
			if s := CollapseSpace(n.Chunks[ki].Text); s != "" {
				*parts = append(*parts, s)
			}
			ki++
		}
	}
}

// CollapseSpace trims s and collapses interior whitespace runs to single
// spaces; it returns "" for whitespace-only input.
func CollapseSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := true // swallow leading whitespace
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v' {
			if !space {
				b.WriteByte(' ')
				space = true
			}
			continue
		}
		b.WriteByte(c)
		space = false
	}
	return strings.TrimRight(b.String(), " ")
}

// CollapsedLen returns len(CollapseSpace(s)) without allocating — the
// heuristics only need the collapsed length (or whether it is nonzero), and
// building the collapsed string for every text event dominated their
// allocation profile.
func CollapsedLen(s string) int {
	n := 0
	i := 0
	for {
		// Skip a whitespace run (also swallows leading whitespace).
		for i < len(s) && asciiSpace[s[i]] {
			i++
		}
		if i >= len(s) {
			return n // a trailing collapsed space is trimmed, so no +1
		}
		if n > 0 {
			n++ // the collapsed space separating this word from the last
		}
		start := i
		for i < len(s) && !asciiSpace[s[i]] {
			i++
		}
		n += i - start
	}
}

// asciiSpace flags the whitespace bytes CollapseSpace collapses.
var asciiSpace = [256]bool{' ': true, '\t': true, '\n': true, '\r': true, '\f': true, '\v': true}

// Walk calls fn for every node in the subtree rooted at n (including n) in
// document order. Returning false from fn prunes that node's subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns the first node in document order (depth-first) within the
// subtree rooted at n whose tag name matches name, or nil.
func (n *Node) Find(name string) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if found != nil {
			return false
		}
		if m != n && m.Name == name {
			found = m
			return false
		}
		return true
	})
	return found
}

// HighestFanOut returns the node with the most immediate children — the
// paper's conjectured location of the record group (Section 3). Ties go to
// the earlier node in document order. The synthetic document root is only
// eligible when the document has no element that wraps its content.
func (t *Tree) HighestFanOut() *Node {
	best := t.Root
	t.Root.Walk(func(n *Node) bool {
		if n == t.Root {
			return true
		}
		if n.FanOut() > best.FanOut() || best == t.Root && n.FanOut() == best.FanOut() {
			best = n
		}
		return true
	})
	return best
}
