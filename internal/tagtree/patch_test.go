package tagtree

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/paperdoc"
)

func TestPatchDocumentInsertsEndTags(t *testing.T) {
	got := PatchDocument("<div><b>bold<i>both</div>")
	want := "<div><b>bold<i>both</i></b></div>"
	if got != want {
		t.Errorf("patched = %q, want %q", got, want)
	}
}

func TestPatchDocumentRemovesUselessTags(t *testing.T) {
	got := PatchDocument("<p><!-- note -->a</b>text</p>")
	if strings.Contains(got, "<!--") {
		t.Errorf("comment survived: %q", got)
	}
	if strings.Contains(got, "</b>") {
		t.Errorf("orphan end tag survived: %q", got)
	}
}

func TestPatchDocumentBalanced(t *testing.T) {
	// Patched documents must contain matching start/end tags for every
	// non-void element.
	inputs := []string{
		paperdoc.Figure2,
		"<table><tr><td>a<td>b<tr><td>c</table>",
		"<ul><li>one<li>two</ul>",
		"<html><body><b>unclosed",
	}
	for _, in := range inputs {
		patched := PatchDocument(in)
		tree := Parse(patched)
		// Re-normalizing a patched document must insert nothing new.
		if again := PatchDocument(patched); again != patched {
			t.Errorf("PatchDocument not idempotent:\n in  %q\n out %q", patched, again)
		}
		_ = tree
	}
}

// TestPatchDocumentEquivalence is the fidelity check: building the tree
// from the patched document (the paper's literal two-pass method) gives
// the same structure as the direct single-pass builder.
func TestPatchDocumentEquivalence(t *testing.T) {
	inputs := []string{
		paperdoc.Figure2,
		"<div><b>bold<i>both</div>",
		"<table><tr><td>a<td>b<tr><td>c</table>",
		"</b>orphan<p>one<p>two",
		"text only",
		"",
	}
	for _, in := range inputs {
		direct := Parse(in)
		viaPatch := Parse(PatchDocument(in))
		if !Equal(direct, viaPatch) {
			t.Errorf("trees differ for %q:\n direct %s\n patch  %s",
				in, shape(direct.Root), shape(viaPatch.Root))
		}
	}
}

// Property: patch-then-parse equals direct parse on arbitrary tag soup.
func TestPatchEquivalenceProperty(t *testing.T) {
	f := func(seed []byte) bool {
		doc := soupFromBytes(seed)
		return Equal(Parse(doc), Parse(PatchDocument(doc)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	if Equal(Parse("<p>a</p>"), Parse("<p>b</p>")) {
		t.Error("Equal ignored text difference")
	}
	if Equal(Parse("<p>a</p>"), Parse("<div>a</div>")) {
		t.Error("Equal ignored name difference")
	}
	if Equal(Parse("<p>a</p>"), Parse("<p>a</p><p>b</p>")) {
		t.Error("Equal ignored child-count difference")
	}
	if !Equal(Parse("<p>  a   b </p>"), Parse("<p>a b</p>")) {
		t.Error("Equal should collapse whitespace")
	}
}
