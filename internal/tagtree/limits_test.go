package tagtree

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/htmlparse"
)

func TestParseContextNoLimitsMatchesParse(t *testing.T) {
	doc := "<div><hr><b>A</b> x<hr><b>B</b> y<hr></div>"
	got, err := ParseContext(context.Background(), doc, Limits{})
	if err != nil {
		t.Fatalf("ParseContext: %v", err)
	}
	want := Parse(doc)
	if got.Root.Text() != want.Root.Text() || countNodes(got) != countNodes(want) {
		t.Errorf("trees differ: text %q vs %q, nodes %d vs %d",
			got.Root.Text(), want.Root.Text(), countNodes(got), countNodes(want))
	}
}

func countNodes(t *Tree) int {
	n := 0
	t.Root.Walk(func(*Node) bool { n++; return true })
	return n
}

func TestParseContextMaxBytes(t *testing.T) {
	doc := "<div>" + strings.Repeat("x", 100) + "</div>"
	if _, err := ParseContext(context.Background(), doc, Limits{MaxBytes: 50}); !errors.Is(err, htmlparse.ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	if _, err := ParseContext(context.Background(), doc, Limits{MaxBytes: len(doc)}); err != nil {
		t.Errorf("at-limit document rejected: %v", err)
	}
}

func TestParseContextMaxDepth(t *testing.T) {
	doc := strings.Repeat("<div>", 10) + "x" + strings.Repeat("</div>", 10)
	if _, err := ParseContext(context.Background(), doc, Limits{MaxDepth: 5}); !errors.Is(err, ErrTooDeep) {
		t.Errorf("err = %v, want ErrTooDeep", err)
	}
	if _, err := ParseContext(context.Background(), doc, Limits{MaxDepth: 10}); err != nil {
		t.Errorf("at-limit nesting rejected: %v", err)
	}
}

func TestParseContextMaxNodes(t *testing.T) {
	doc := "<div>" + strings.Repeat("<b>x</b>", 20) + "</div>"
	if _, err := ParseContext(context.Background(), doc, Limits{MaxNodes: 10}); !errors.Is(err, ErrTooManyNodes) {
		t.Errorf("err = %v, want ErrTooManyNodes", err)
	}
	// 20 <b> + 1 <div> = 21 element nodes.
	if _, err := ParseContext(context.Background(), doc, Limits{MaxNodes: 21}); err != nil {
		t.Errorf("at-limit node count rejected: %v", err)
	}
}

func TestParseContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	sb.WriteString("<div>")
	// Enough tokens to guarantee the build loop crosses a checkpoint.
	for i := 0; i < 2*buildCheckEvery; i++ {
		sb.WriteString("<b>x</b>")
	}
	sb.WriteString("</div>")
	if _, err := ParseContext(ctx, sb.String(), Limits{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestParseXMLContextLimits(t *testing.T) {
	doc := "<root>" + strings.Repeat("<item>x</item>", 20) + "</root>"
	if _, err := ParseXMLContext(context.Background(), doc, Limits{MaxNodes: 5}); !errors.Is(err, ErrTooManyNodes) {
		t.Errorf("err = %v, want ErrTooManyNodes", err)
	}
	got, err := ParseXMLContext(context.Background(), doc, Limits{})
	if err != nil {
		t.Fatalf("ParseXMLContext: %v", err)
	}
	want := ParseXML(doc)
	if got.Root.Text() != want.Root.Text() || countNodes(got) != countNodes(want) {
		t.Errorf("trees differ: text %q vs %q, nodes %d vs %d",
			got.Root.Text(), want.Root.Text(), countNodes(got), countNodes(want))
	}
}
