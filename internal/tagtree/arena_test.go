package tagtree

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// diffTrees returns a description of the first difference between two trees,
// or "" when they are structurally identical (shape, names, attributes,
// offsets, decoded text, event streams). It is the oracle both the arena
// unit tests and FuzzByteVsStringParse rely on.
func diffTrees(a, b *Tree) string {
	if len(a.Events) != len(b.Events) {
		return fmt.Sprintf("event count: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Kind != eb.Kind || ea.Pos != eb.Pos || ea.Text != eb.Text {
			return fmt.Sprintf("event %d: %+v vs %+v", i, ea, eb)
		}
		if (ea.Node == nil) != (eb.Node == nil) {
			return fmt.Sprintf("event %d: node presence differs", i)
		}
		if ea.Node != nil && ea.Node.Name != eb.Node.Name {
			return fmt.Sprintf("event %d: node %q vs %q", i, ea.Node.Name, eb.Node.Name)
		}
	}
	return diffNodes("#document", a.Root, b.Root)
}

func diffNodes(path string, a, b *Node) string {
	if a.Name != b.Name {
		return fmt.Sprintf("%s: name %q vs %q", path, a.Name, b.Name)
	}
	if a.StartPos != b.StartPos || a.EndPos != b.EndPos {
		return fmt.Sprintf("%s: span [%d,%d] vs [%d,%d]", path, a.StartPos, a.EndPos, b.StartPos, b.EndPos)
	}
	af, al := a.EventRange()
	bf, bl := b.EventRange()
	if af != bf || al != bl {
		return fmt.Sprintf("%s: event range [%d,%d) vs [%d,%d)", path, af, al, bf, bl)
	}
	if a.SubtreeTagCount() != b.SubtreeTagCount() {
		return fmt.Sprintf("%s: subtree tags %d vs %d", path, a.SubtreeTagCount(), b.SubtreeTagCount())
	}
	if len(a.Attrs) != len(b.Attrs) {
		return fmt.Sprintf("%s: attr count %d vs %d", path, len(a.Attrs), len(b.Attrs))
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return fmt.Sprintf("%s: attr %d: %+v vs %+v", path, i, a.Attrs[i], b.Attrs[i])
		}
	}
	if len(a.Chunks) != len(b.Chunks) {
		return fmt.Sprintf("%s: chunk count %d vs %d", path, len(a.Chunks), len(b.Chunks))
	}
	for i := range a.Chunks {
		if a.Chunks[i] != b.Chunks[i] {
			return fmt.Sprintf("%s: chunk %d: %+v vs %+v", path, i, a.Chunks[i], b.Chunks[i])
		}
	}
	if len(a.Children) != len(b.Children) {
		return fmt.Sprintf("%s: child count %d vs %d", path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		if d := diffNodes(fmt.Sprintf("%s/%s[%d]", path, a.Children[i].Name, i), a.Children[i], b.Children[i]); d != "" {
			return d
		}
	}
	return ""
}

const arenaTestDoc = `<!DOCTYPE html><HTML><Head><TITLE>A & B</title></head>
<body bgcolor="#ffffff"><!-- rail --><table Border=1>
<tr><td>Name<td>Alice &amp; co<tr><td>Obit<td>Bob — d. 1998
</table><ul><li>one<li>two &#38; three<li><script>if (a<b) { x() }</script>
</ul><p>end<hr></body></html>`

func TestParseArenaMatchesParse(t *testing.T) {
	a := AcquireArena()
	defer a.Release()
	for _, doc := range []string{arenaTestDoc, "", "plain text", "<a href='x&y'>t</a>"} {
		ref, err := ParseContext(context.Background(), doc, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseArenaContext(context.Background(), doc, Limits{}, a, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := diffTrees(ref, got); d != "" {
			t.Fatalf("arena parse differs for %q: %s", doc, d)
		}
	}
}

func TestParseXMLArenaMatchesParseXML(t *testing.T) {
	a := AcquireArena()
	defer a.Release()
	doc := `<?xml version="1.0"?><Feed><Item id="1"><Name><![CDATA[x <&> y]]></Name></Item><Item/><other>text</Feed>`
	ref, err := ParseXMLContext(context.Background(), doc, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseXMLArenaContext(context.Background(), doc, Limits{}, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffTrees(ref, got); d != "" {
		t.Fatalf("arena XML parse differs: %s", d)
	}
}

// TestParseArenaLimitsMatch pins that the arena path trips the same limit
// errors as the reference path, in the same order.
func TestParseArenaLimitsMatch(t *testing.T) {
	doc := strings.Repeat("<div><span>x</span></div>", 200)
	deep := strings.Repeat("<div>", 100)
	for _, tc := range []struct {
		name string
		doc  string
		lim  Limits
	}{
		{"nodes", doc, Limits{MaxNodes: 10}},
		{"depth", deep, Limits{MaxDepth: 10}},
		{"bytes", doc, Limits{MaxBytes: 16}},
		{"ok", doc, Limits{MaxNodes: 10000, MaxDepth: 100}},
	} {
		a := AcquireArena()
		_, refErr := ParseContext(context.Background(), tc.doc, tc.lim)
		_, gotErr := ParseArenaContext(context.Background(), tc.doc, tc.lim, a, nil)
		if fmt.Sprint(refErr) != fmt.Sprint(gotErr) {
			t.Errorf("%s: reference err %v, arena err %v", tc.name, refErr, gotErr)
		}
		a.Release()
	}
}

// TestParseArenaWarmZeroAllocs is the core zero-alloc guarantee: once the
// arena is warm, parsing a document with no entity references allocates
// nothing at all.
func TestParseArenaWarmZeroAllocs(t *testing.T) {
	// Entity references force DecodeEntities onto its allocating slow path
	// (correctly so); strip them to measure the pure structural path.
	doc := strings.NewReplacer("&amp;", "and", "&#38;", "and", "A & B", "A B").Replace(arenaTestDoc)
	a := AcquireArena()
	defer a.Release()
	ParseArena(doc, a) // warm the slabs
	allocs := testing.AllocsPerRun(50, func() {
		ParseArena(doc, a)
	})
	if allocs != 0 {
		t.Errorf("warm arena parse: measured %v allocs/op, ceiling 0", allocs)
	}
}

// TestArenaReleaseIdempotent pins the panic-safety contract: Release from a
// defer may run after an explicit Release without double-pooling.
func TestArenaReleaseIdempotent(t *testing.T) {
	a := AcquireArena()
	ParseArena("<b>x</b>", a)
	a.Release()
	a.Release() // no-op
	b := AcquireArena()
	defer b.Release()
	if tr := ParseArena("<i>y</i>", b); tr.Root.Find("i") == nil {
		t.Fatal("arena unusable after double release")
	}
}

// TestArenaPanicMidParseReleases arms the htmlparse/arena hook with a panic
// and proves the deferred Release still repools the (dirty) entry, no
// goroutines leak, and the arena remains usable afterwards.
func TestArenaPanicMidParseReleases(t *testing.T) {
	before := runtime.NumGoroutine()
	set := faultinject.New()
	set.Inject("htmlparse/arena", faultinject.Fault{Panic: "mid-parse", Times: 1})
	a := AcquireArena()
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected injected panic")
			}
		}()
		defer a.Release()
		_, _ = ParseArenaContext(context.Background(), arenaTestDoc, Limits{}, a, set)
	}()
	if set.Fired("htmlparse/arena") != 1 {
		t.Fatalf("hook fired %d times, want 1", set.Fired("htmlparse/arena"))
	}
	// The released entry must be clean and reusable.
	b := AcquireArena()
	defer b.Release()
	ref := Parse(arenaTestDoc)
	got, err := ParseArenaContext(context.Background(), arenaTestDoc, Limits{}, b, set)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffTrees(ref, got); d != "" {
		t.Fatalf("arena dirty after panic release: %s", d)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestParseArenaCanceled pins that cancellation surfaces identically on the
// arena path.
func TestParseArenaCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := AcquireArena()
	defer a.Release()
	if _, err := ParseArenaContext(ctx, arenaTestDoc, Limits{}, a, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCollapsedLen(t *testing.T) {
	for _, s := range []string{
		"", " ", "  \t\n", "a", " a ", "a  b", "  a \t b\vc  ", "one two", "\fx\f",
	} {
		if got, want := CollapsedLen(s), len(CollapseSpace(s)); got != want {
			t.Errorf("CollapsedLen(%q) = %d, want %d", s, got, want)
		}
	}
}
