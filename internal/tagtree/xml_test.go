package tagtree

import (
	"testing"

	"repro/internal/htmlparse"
)

const sampleXML = `<?xml version="1.0"?>
<!-- a catalog feed -->
<catalog>
  <listing>
    <name>Lemar K. Adamson</name>
    <date>September 30, 1998</date>
  </listing>
  <listing>
    <name>Brian Fielding Frost</name>
    <date>September 30, 1998</date>
  </listing>
  <listing>
    <name>Leonard Kenneth Gunther</name>
    <date/>
  </listing>
</catalog>`

func TestParseXMLShape(t *testing.T) {
	tree := ParseXML(sampleXML)
	got := shape(tree.Root)
	want := "#document(catalog(listing(name date) listing(name date) listing(name date)))"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestParseXMLHighestFanOutAndCandidates(t *testing.T) {
	tree := ParseXML(sampleXML)
	hf := tree.HighestFanOut()
	if hf.Name != "catalog" {
		t.Fatalf("highest fan-out = %s, want catalog", hf.Name)
	}
	cands := Candidates(hf, DefaultCandidateThreshold)
	names := map[string]int{}
	for _, c := range cands {
		names[c.Name] = c.Count
	}
	if names["listing"] != 3 || names["name"] != 3 || names["date"] != 3 {
		t.Errorf("candidates = %v", cands)
	}
}

func TestParseXMLCaseSensitivity(t *testing.T) {
	// <Item> and <item> are different XML elements; </item> must not close
	// <Item>.
	tree := ParseXML("<root><Item>a</Item><item>b</item></root>")
	root := tree.Root.Find("root")
	if got := shape(root); got != "root(Item item)" {
		t.Errorf("shape = %s, want root(Item item)", got)
	}
}

func TestParseXMLNoHTMLVoidSemantics(t *testing.T) {
	// An XML element named "br" can have children — HTML void rules must
	// not apply.
	tree := ParseXML("<root><br><child>x</child></br></root>")
	br := tree.Root.Find("br")
	if br == nil || len(br.Children) != 1 || br.Children[0].Name != "child" {
		t.Errorf("br children wrong: %v", shape(tree.Root))
	}
}

func TestParseXMLSelfClosing(t *testing.T) {
	tree := ParseXML("<root><a/><b/><c/></root>")
	root := tree.Root.Find("root")
	if root.FanOut() != 3 {
		t.Errorf("fan-out = %d, want 3", root.FanOut())
	}
}

func TestParseXMLCDATA(t *testing.T) {
	tree := ParseXML("<root><![CDATA[a < b && c > d]]></root>")
	root := tree.Root.Find("root")
	if got := root.Text(); got != "a < b && c > d" {
		t.Errorf("CDATA text = %q", got)
	}
}

func TestParseXMLUnterminatedCDATA(t *testing.T) {
	tree := ParseXML("<root><![CDATA[never ends")
	if tree.Root.Find("root") == nil {
		t.Error("root lost")
	}
}

func TestTokenizeXMLPreservesNameCase(t *testing.T) {
	toks := htmlparse.TokenizeXML("<CamelCase attr='x'>text</CamelCase>")
	if toks[0].Name != "CamelCase" || toks[2].Name != "CamelCase" {
		t.Errorf("names = %q / %q", toks[0].Name, toks[2].Name)
	}
	if v, ok := toks[0].Attr("attr"); !ok || v != "x" {
		t.Errorf("attr = %q %v", v, ok)
	}
}

func TestTokenizeXMLProcessingInstruction(t *testing.T) {
	toks := htmlparse.TokenizeXML(`<?xml version="1.0"?><r/>`)
	if toks[0].Type != htmlparse.Comment {
		t.Errorf("PI token = %v", toks[0])
	}
	if toks[1].Name != "r" || !toks[1].SelfClosing {
		t.Errorf("element token = %v", toks[1])
	}
}

func TestNormalizeXMLDiscardsOrphanEnds(t *testing.T) {
	norm := NormalizeXML(htmlparse.TokenizeXML("</stray><a>x</a>"))
	for _, tok := range norm {
		if tok.Type == htmlparse.EndTag && tok.Name == "stray" {
			t.Error("orphan end survived")
		}
	}
}

func TestNormalizeXMLInsertsMissingEnds(t *testing.T) {
	norm := NormalizeXML(htmlparse.TokenizeXML("<a><b>x</a>"))
	var names []string
	for _, tok := range norm {
		if tok.Type == htmlparse.EndTag {
			names = append(names, tok.Name)
		}
	}
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("end order = %v, want [b a]", names)
	}
}
