package tagtree

import (
	"strings"

	"repro/internal/htmlparse"
)

// PatchDocument performs Appendix A step 2 *literally*: it returns a copy of
// the document with "useless" tags (comments, doctypes, and end-tags that
// have no corresponding start-tag) removed and every "missing" end-tag
// textually inserted, so that the result is a balanced document.
//
// The paper's tag-tree construction runs in two passes over this patched
// text ("the updated document is discarded once the tag tree is built");
// Parse builds the same tree in a single pass over the token stream without
// materializing the patch. PatchDocument exists for fidelity and for tests:
// Parse(PatchDocument(d)) and Parse(d) must produce structurally identical
// trees (see TestPatchDocumentEquivalence).
func PatchDocument(doc string) string {
	tokens := htmlparse.Tokenize(doc)
	norm := Normalize(tokens)
	var b strings.Builder
	b.Grow(len(doc) + len(doc)/8)
	for _, tok := range norm {
		switch {
		case tok.Synthetic:
			b.WriteString("</" + tok.Name + ">")
		case tok.Type == htmlparse.Text:
			// Re-emit the original raw slice so entities survive verbatim.
			b.WriteString(doc[tok.Pos:tok.End])
		default:
			b.WriteString(doc[tok.Pos:tok.End])
		}
	}
	return b.String()
}

// Equal reports whether two trees have the same structure: matching names,
// child shapes, and region text equal modulo whitespace and chunk
// boundaries. Chunk boundaries are ignored because removing a useless tag
// from between two text runs (Appendix A step 2) fuses them — the paper's
// patched document genuinely contains the fused text. Positions are not
// compared — a patched document shifts offsets.
func Equal(a, b *Tree) bool {
	return nodesEqual(a.Root, b.Root)
}

func nodesEqual(a, b *Node) bool {
	if a.Name != b.Name || len(a.Children) != len(b.Children) {
		return false
	}
	if collapseChunks(a.Chunks) != collapseChunks(b.Chunks) {
		return false
	}
	for i := range a.Children {
		if !nodesEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func collapseChunks(chunks []Chunk) string {
	var b strings.Builder
	for _, c := range chunks {
		b.WriteString(c.Text)
	}
	return CollapseSpace(b.String())
}
