package tagtree

// Span is a half-open byte range [Start, End) in a document. Record
// boundaries — both the ground truth a corpus generator plants and the
// predictions an extractor emits — are exchanged in this form, so methods
// can be compared span-by-span by the evaluation harness.
type Span struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the span's byte length (never negative).
func (s Span) Len() int {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}
