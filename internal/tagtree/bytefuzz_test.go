package tagtree

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// FuzzByteVsStringParse is the differential gate for the byte-level hot
// path: for any input, the arena parse (byte tokenizer, pooled memory) must
// produce a tree identical — shape, offsets, decoded text, attributes,
// event stream — to the pre-change string reference, in both HTML and XML
// modes. The seed set mixes handcrafted grammar corners with every file
// under internal/htmlparse/testdata.
func FuzzByteVsStringParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"plain < text > only",
		arenaTestDoc,
		"<ul><li>a<li>b</ul>",
		"<table><tr><td>1<td>2<tr><td>3</table>",
		"<SCRIPT>if (a<b && c) { s = \"</div>\" }</SCRIPT>",
		"<script>x</SCRIPT tail>",
		"<style>p { color: red }</style><p>done",
		"<textarea>unclosed raw text",
		"<!DOCTYPE html><!-- c --><?pi?><p>t</p>",
		"<!doctype junk<!-->-->",
		"<a href=\"x>y\" b='q' c=unquoted d>t</a>",
		"<a/><b /><c / d><e =f>",
		"<p>&amp; &#65; &#x41; &unknown; &AMP</p>",
		"<DIV CLASS=UPPER><Span>MiXeD</sPaN></dIv>",
		"<![CDATA[raw <&> here]]><item>x</item>",
		"<?xml version=\"1.0\"?><Feed><It3m.x:y-z_/></Feed>",
		"<x><y><z></y></x>",
		"</orphan><p>t</p></also-orphan>",
		"< notatag <1 <\x00<",
		"<p title='a&lt;b'>v</p>",
		"\xffbin\xfe<b\x80r attr\x9d=\"\xc3\x89\">t\xcc</b\x80r>",
		"<br></br><hr/><img src=x>",
		"<b><i>deep</b></i>",
	} {
		f.Add(seed)
	}
	// Every file under the htmlparse testdata tree is a seed too (fuzz
	// corpus entries are fed raw: still valid differential inputs).
	root := filepath.Join("..", "htmlparse", "testdata")
	_ = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		if data, err := os.ReadFile(path); err == nil {
			f.Add(string(data))
		}
		return nil
	})

	f.Fuzz(func(t *testing.T, doc string) {
		a := AcquireArena()
		defer a.Release()

		ref, refErr := ParseContext(context.Background(), doc, Limits{})
		got, gotErr := ParseArenaContext(context.Background(), doc, Limits{}, a, nil)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("HTML error divergence: ref %v, arena %v", refErr, gotErr)
		}
		if refErr == nil {
			if d := diffTrees(ref, got); d != "" {
				t.Fatalf("HTML tree divergence: %s", d)
			}
		}

		refX, refXErr := ParseXMLContext(context.Background(), doc, Limits{})
		gotX, gotXErr := ParseXMLArenaContext(context.Background(), doc, Limits{}, a, nil)
		if (refXErr == nil) != (gotXErr == nil) {
			t.Fatalf("XML error divergence: ref %v, arena %v", refXErr, gotXErr)
		}
		if refXErr == nil {
			if d := diffTrees(refX, gotX); d != "" {
				t.Fatalf("XML tree divergence: %s", d)
			}
		}
	})
}
