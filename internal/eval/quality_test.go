package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func TestExtractionQualityBands(t *testing.T) {
	// The paper's companion work reports recall ≈ 90% and precision ≈ 95%
	// for the surrounding pipeline. The synthetic corpus should land in the
	// same bands per domain.
	byDomain, err := MeasureDomainExtraction(corpus.TestDocuments())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range corpus.AllDomains {
		q, ok := byDomain[d]
		if !ok {
			t.Fatalf("no measurement for %s", d)
		}
		if q.Planted == 0 {
			t.Fatalf("%s: nothing planted", d)
		}
		if r := q.Recall(); r < 0.80 {
			t.Errorf("%s recall = %.1f%% (recalled %d/%d), below the paper's ~90%% band",
				d, r*100, q.Recalled, q.Planted)
		}
		if p := q.Precision(); p < 0.85 {
			t.Errorf("%s precision = %.1f%% (correct %d/%d), below the paper's ~95%% band",
				d, p*100, q.Correct, q.Extracted)
		}
	}
}

// TestNoisyExtractionQualityBands measures the hand-authoring-noise corpus:
// recall lands in the paper's reported regime (≈90%, with one weaker
// domain, as the paper itself reports for obituary names) while boundary
// discovery itself is unaffected by content noise.
func TestNoisyExtractionQualityBands(t *testing.T) {
	docs := corpus.NoisyTestDocuments()
	byDomain, err := MeasureDomainExtraction(docs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range corpus.AllDomains {
		q := byDomain[d]
		if r := q.Recall(); r < 0.70 || r >= 1.0 {
			t.Errorf("%s noisy recall = %.1f%% — expected the paper's imperfect regime [70%%,100%%)", d, r*100)
		}
		if p := q.Precision(); p < 0.80 {
			t.Errorf("%s noisy precision = %.1f%%, below band", d, p*100)
		}
	}
	// Structure is untouched by content noise: ORSIH stays perfect.
	results, err := EvaluateAll(docs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sr := SuccessRate(results); sr != 1.0 {
		t.Errorf("ORSIH on noisy corpus = %.2f, want 1.0", sr)
	}
}

func TestQualityArithmetic(t *testing.T) {
	q := Quality{Planted: 10, Recalled: 9, Extracted: 8, Correct: 8}
	if q.Recall() != 0.9 {
		t.Errorf("recall = %v", q.Recall())
	}
	if q.Precision() != 1.0 {
		t.Errorf("precision = %v", q.Precision())
	}
	var zero Quality
	if zero.Recall() != 1 || zero.Precision() != 1 {
		t.Error("empty measurements should read as perfect")
	}
	q.Add(Quality{Planted: 10, Recalled: 1, Extracted: 2, Correct: 0})
	if q.Planted != 20 || q.Recalled != 10 || q.Extracted != 10 || q.Correct != 8 {
		t.Errorf("after Add: %+v", q)
	}
}

func TestMeasureExtractionPerfectOnCleanDoc(t *testing.T) {
	// A clean wrapped-layout document with no noise knobs should extract
	// essentially perfectly.
	site := &corpus.Site{Name: "clean", Domain: corpus.CarAds, Profile: corpus.Profile{
		Container: []string{"table"},
		Layout:    corpus.Wrapped,
		Separator: "tr",
		Records:   [2]int{10, 10},
		BoldRuns:  [2]int{1, 2},
		BaseSize:  200,
	}}
	doc := site.Generate(0)
	q, err := MeasureExtraction(doc)
	if err != nil {
		t.Fatal(err)
	}
	if q.Recall() < 0.95 {
		t.Errorf("clean-doc recall = %.1f%% (%d/%d)", q.Recall()*100, q.Recalled, q.Planted)
	}
	if q.Precision() < 0.95 {
		t.Errorf("clean-doc precision = %.1f%% (%d/%d)", q.Precision()*100, q.Correct, q.Extracted)
	}
}

func TestFormatQuality(t *testing.T) {
	out := FormatQuality(map[corpus.Domain]Quality{
		corpus.Obituaries: {Planted: 10, Recalled: 9, Extracted: 10, Correct: 10},
	})
	if out == "" || len(out) < 40 {
		t.Errorf("format output too small: %q", out)
	}
}
