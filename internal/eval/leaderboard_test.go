package eval

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// TestRegistrationsShape pins the registry the leaderboard tracks: at least
// the paper's compound, five ablations, the wrapper fast path, and the
// baseline — with unique names and working constructors.
func TestRegistrationsShape(t *testing.T) {
	regs := Registrations()
	if len(regs) < 5 {
		t.Fatalf("only %d registered extractors, want at least 5", len(regs))
	}
	seen := map[string]bool{}
	for _, reg := range regs {
		if reg.Name == "" || reg.New == nil {
			t.Fatalf("malformed registration %+v", reg)
		}
		if seen[reg.Name] {
			t.Fatalf("duplicate registration %q", reg.Name)
		}
		seen[reg.Name] = true
		if got := reg.New().Name(); got != reg.Name {
			t.Errorf("registration %q constructs extractor named %q", reg.Name, got)
		}
	}
	for _, want := range []string{"ORSIH", "OM-only", "RP-only", "SD-only", "IT-only", "HT-only", "wrapper", "fanout-top"} {
		if !seen[want] {
			t.Errorf("registry is missing %q", want)
		}
	}
}

// TestLeaderboardTestCorpus checks the substance of the leaderboard on the
// 20-document test corpus: the compound is perfect (the paper's Table 9
// result restated as record-level F1), the wrapper fast path serves the
// identical answer warm, and the naive baseline does not beat the compound.
func TestLeaderboardTestCorpus(t *testing.T) {
	report := RunLeaderboard(corpus.TestDocuments(), QualityOptions{})
	if report.Documents != 20 {
		t.Fatalf("report covers %d documents, want 20", report.Documents)
	}
	if report.SlackBytes != DefaultBoundarySlack {
		t.Fatalf("slack %d, want default %d", report.SlackBytes, DefaultBoundarySlack)
	}

	orsih, ok := report.Row("ORSIH")
	if !ok {
		t.Fatal("no ORSIH row")
	}
	if orsih.Errors != 0 || orsih.Exact.F1 != 1 || orsih.Forgiving.F1 != 1 || orsih.MacroF1Exact != 1 {
		t.Errorf("ORSIH should be perfect on the test corpus, got %+v", orsih)
	}

	wrapper, ok := report.Row("wrapper")
	if !ok {
		t.Fatal("no wrapper row")
	}
	if wrapper.Exact != orsih.Exact || wrapper.Forgiving != orsih.Forgiving {
		t.Errorf("wrapper fast path diverged from the pipeline it memoizes:\nwrapper %+v\nORSIH   %+v",
			wrapper, orsih)
	}

	baseline, ok := report.Row("fanout-top")
	if !ok {
		t.Fatal("no fanout-top row")
	}
	if baseline.Forgiving.F1 > orsih.Forgiving.F1 {
		t.Errorf("naive baseline (F1 %v) beats the compound (F1 %v)",
			baseline.Forgiving.F1, orsih.Forgiving.F1)
	}

	// Leaderboard order: descending forgiving F1 with deterministic ties.
	for i := 1; i < len(report.Extractors); i++ {
		a, b := report.Extractors[i-1], report.Extractors[i]
		if a.Forgiving.F1 < b.Forgiving.F1 {
			t.Errorf("rows %d/%d out of order: %s (%v) before %s (%v)",
				i-1, i, a.Name, a.Forgiving.F1, b.Name, b.Forgiving.F1)
		}
	}
}

// TestWrapperExtractorServesWarmAnswers confirms the wrapper row actually
// measures the fast path: every document is learned once (a store) and then
// answered from the store (a hit).
func TestWrapperExtractorServesWarmAnswers(t *testing.T) {
	ext := newWrapperExtractor().(*wrapperExtractor)
	docs := corpus.TestDocuments()[:5]
	for _, doc := range docs {
		if _, err := ext.Extract(doc, doc.Site.Domain.Ontology()); err != nil {
			t.Fatalf("%s/%d: %v", doc.Site.Name, doc.Index, err)
		}
	}
	stats := ext.store.Stats()
	if int(stats.Stores) != len(docs) || int(stats.Hits) != len(docs) {
		t.Errorf("store saw %v stores and %v hits for %d documents; want one of each per document",
			stats.Stores, stats.Hits, len(docs))
	}
}

// TestLeaderboardDeterministic: two full runs — and runs at any worker
// count — produce identical reports, down to the serialized bytes. This is
// the property the committed QUALITY_<n>.json baseline and golden files
// depend on.
func TestLeaderboardDeterministic(t *testing.T) {
	docs := corpus.TestDocuments()
	a := RunLeaderboard(docs, QualityOptions{})
	b := RunLeaderboard(docs, QualityOptions{})
	serial := RunLeaderboard(docs, QualityOptions{Workers: 1})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs disagree:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(a, serial) {
		t.Errorf("parallel and serial runs disagree:\n%+v\n%+v", a, serial)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("serialized reports differ between identical runs")
	}
	if FormatLeaderboard(a) != FormatLeaderboard(b) {
		t.Error("formatted leaderboards differ between identical runs")
	}
}

// TestLeaderboardDocOrderInvariance: feeding the corpus in a different
// document order changes nothing — aggregation is order-blind.
func TestLeaderboardDocOrderInvariance(t *testing.T) {
	docs := corpus.TestDocuments()
	reversed := make([]*corpus.Document, len(docs))
	for i, d := range docs {
		reversed[len(docs)-1-i] = d
	}
	a := RunLeaderboard(docs, QualityOptions{})
	b := RunLeaderboard(reversed, QualityOptions{})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("leaderboard depends on document order:\n%+v\n%+v", a, b)
	}
}

// TestLeaderboardCustomRegistry: QualityOptions.Extractors overrides the
// registry — the hook for scoring an experimental method without touching
// the tracked leaderboard.
func TestLeaderboardCustomRegistry(t *testing.T) {
	report := RunLeaderboard(corpus.TestDocuments()[:3], QualityOptions{
		Extractors: []Registration{{
			Name: "fanout-only",
			New:  func() Extractor { return fanoutExtractor{} },
		}},
	})
	if len(report.Extractors) != 1 || report.Extractors[0].Name != "fanout-only" {
		t.Fatalf("custom registry not honored: %+v", report.Extractors)
	}
}

func TestFormatLeaderboard(t *testing.T) {
	report := RunLeaderboard(corpus.TestDocuments()[:2], QualityOptions{})
	table := FormatLeaderboard(report)
	for _, want := range []string{"leaderboard", "rank", "ORSIH", "fanout-top", "wrapper"} {
		if !strings.Contains(table, want) {
			t.Errorf("table is missing %q:\n%s", want, table)
		}
	}
}
