package eval

// Structural matching for record boundaries, following NEXT-EVAL's framing:
// an extractor's output for one document is a list of byte spans (one per
// predicted record), scored against ground-truth spans with record-level
// precision/recall/F1. Two variants are computed side by side:
//
//   - exact      — a predicted record counts only when both its boundaries
//     equal a truth record's exactly;
//   - forgiving  — both boundaries may differ by up to a slack of N bytes,
//     absorbing near-miss segmentations (an extractor answering <td> where
//     <tr> also correctly wraps each record lands a few bytes inside the
//     truth span).
//
// Matching is one-to-one and order-preserving: both lists are ascending
// partitions of the same record region, so a two-pointer sweep pairs them
// deterministically without an assignment solver.

import (
	"math"

	"repro/internal/tagtree"
)

// DefaultBoundarySlack is the forgiving variant's boundary tolerance in
// bytes. 16 covers a nested wrapper tag (`<tr><td>` is 8 bytes) plus
// whitespace without reaching across a whole record (corpus records are
// hundreds of bytes).
const DefaultBoundarySlack = 16

// Counts accumulates record-level match bookkeeping: how many predicted
// records matched a truth record, and the sizes of both sides.
type Counts struct {
	Matched   int `json:"matched"`
	Predicted int `json:"predicted"`
	Truth     int `json:"truth"`
}

// Add accumulates another measurement (micro-aggregation across documents).
func (c *Counts) Add(o Counts) {
	c.Matched += o.Matched
	c.Predicted += o.Predicted
	c.Truth += o.Truth
}

// Precision is Matched/Predicted. An extractor that predicted nothing has
// precision 1 against an empty truth and 0 otherwise.
func (c Counts) Precision() float64 {
	if c.Predicted == 0 {
		if c.Truth == 0 {
			return 1
		}
		return 0
	}
	return float64(c.Matched) / float64(c.Predicted)
}

// Recall is Matched/Truth, with the symmetric empty-side convention.
func (c Counts) Recall() float64 {
	if c.Truth == 0 {
		if c.Predicted == 0 {
			return 1
		}
		return 0
	}
	return float64(c.Matched) / float64(c.Truth)
}

// F1 is the harmonic mean of precision and recall (0 when both are 0).
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MatchCount pairs predicted spans with truth spans one-to-one, in order,
// and returns how many pairs agree within slack bytes on both boundaries.
// slack 0 is the exact variant. Both inputs must be in ascending span order
// (extractor output and ground truth both are, by construction).
func MatchCount(pred, truth []tagtree.Span, slack int) int {
	i, j, matched := 0, 0, 0
	for i < len(pred) && j < len(truth) {
		p, t := pred[i], truth[j]
		if absInt(p.Start-t.Start) <= slack && absInt(p.End-t.End) <= slack {
			matched++
			i++
			j++
			continue
		}
		// No match: drop whichever span ends first — it cannot match any
		// later span on the other side without crossing one that starts
		// earlier.
		if p.End < t.End || (p.End == t.End && p.Start <= t.Start) {
			i++
		} else {
			j++
		}
	}
	return matched
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// BoundaryScore is one document's structural-match outcome under both
// variants.
type BoundaryScore struct {
	Exact     Counts
	Forgiving Counts
}

// ScoreBoundaries scores a prediction against every acceptable truth
// segmentation (a document with several correct separator tags — a wrapped
// <tr> whose lone <td> splits the records equally well — has one
// segmentation per truth tag) and keeps the most favorable: highest
// forgiving F1, then highest exact F1, then the earliest segmentation.
// With no truth segmentations the prediction is scored against emptiness.
func ScoreBoundaries(pred []tagtree.Span, truths [][]tagtree.Span, slack int) BoundaryScore {
	if len(truths) == 0 {
		truths = [][]tagtree.Span{nil}
	}
	var best BoundaryScore
	bestF := -1.0
	bestE := -1.0
	for _, truth := range truths {
		s := BoundaryScore{
			Exact: Counts{
				Matched:   MatchCount(pred, truth, 0),
				Predicted: len(pred),
				Truth:     len(truth),
			},
			Forgiving: Counts{
				Matched:   MatchCount(pred, truth, slack),
				Predicted: len(pred),
				Truth:     len(truth),
			},
		}
		f, e := s.Forgiving.F1(), s.Exact.F1()
		if f > bestF || (f == bestF && e > bestE) {
			best, bestF, bestE = s, f, e
		}
	}
	return best
}

// round6 fixes a metric to six decimals so reports are stable, readable,
// and byte-identical across runs and platforms.
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }
