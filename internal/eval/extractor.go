package eval

// The method-generic half of the harness: an Extractor is anything that
// turns a document into record boundaries. The full ORSIH pipeline, each
// single-heuristic ablation, the learned-wrapper fast path, and a trivial
// highest-fan-out baseline are registered below; every method is scored on
// the same corpus with the same structural-match metric, so the leaderboard
// (cmd/evalrun, QUALITY_<n>.json) compares them on one footing — and any
// future method (nested records, modern-page heuristics, an external
// baseline) joins by adding a Registration.

import (
	"repro/internal/certainty"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/tagtree"
	"repro/internal/template"
)

// Extractor is one record-boundary extraction method under evaluation.
// Implementations must be deterministic: the same document and ontology
// always yield the same spans, in ascending order.
type Extractor interface {
	// Name is the method's leaderboard identity.
	Name() string
	// Extract returns the predicted record boundaries for one document.
	// An error counts the document against the method (scored as an empty
	// prediction), never aborts the evaluation.
	Extract(doc *corpus.Document, ont *ontology.Ontology) ([]tagtree.Span, error)
}

// Registration couples an extractor's identity with a constructor. New is
// called once per evaluation run, so stateful methods (the wrapper fast
// path's store) start cold and runs stay independent.
type Registration struct {
	Name        string
	Description string
	New         func() Extractor
}

// Registrations lists every method the leaderboard tracks, in registry
// order: the paper's compound, the five single-heuristic ablations, the
// learned-wrapper fast path, and the naive baseline.
func Registrations() []Registration {
	regs := []Registration{{
		Name:        "ORSIH",
		Description: "full five-heuristic compound (the paper's pipeline)",
		New:         func() Extractor { return &discoverExtractor{name: "ORSIH"} },
	}}
	for _, h := range certainty.AllHeuristics {
		regs = append(regs, Registration{
			Name:        h + "-only",
			Description: "single-heuristic ablation: " + h + " alone picks the separator",
			New: func() Extractor {
				return &discoverExtractor{name: h + "-only", combo: certainty.Combination{h}}
			},
		})
	}
	return append(regs,
		Registration{
			Name:        "wrapper",
			Description: "learned-wrapper fast path: answers served from the template store after one cold learn per page shape",
			New:         newWrapperExtractor,
		},
		Registration{
			Name:        "fanout-top",
			Description: "naive baseline: the highest-count candidate tag in the highest-fan-out subtree",
			New:         func() Extractor { return fanoutExtractor{} },
		},
	)
}

// discoverExtractor runs the discovery pipeline under a heuristic
// combination: the full compound (nil combination) or a single-heuristic
// ablation. When the lone heuristic declines, every candidate scores a
// compound CF of zero and the alphabetically-first candidate wins — the
// honest cost of relying on one source of evidence.
type discoverExtractor struct {
	name  string
	combo certainty.Combination
}

func (e *discoverExtractor) Name() string { return e.name }

func (e *discoverExtractor) Extract(doc *corpus.Document, ont *ontology.Ontology) ([]tagtree.Span, error) {
	// Per-call arena: the leaderboard runs one Extractor instance across
	// worker goroutines, so the arena cannot live on the extractor itself.
	arena := tagtree.AcquireArena()
	defer arena.Release()
	res, err := core.Discover(doc.HTML, core.Options{Ontology: ont, Combination: e.combo, Arena: arena})
	if err != nil {
		return nil, err
	}
	return res.Boundaries(doc.HTML), nil
}

// wrapperExtractor scores the template fast path on its warm answers: each
// document is discovered cold first (learning the wrapper) and then again
// warm, and the warm result — served from the store for every non-degraded
// shape — is what gets scored. Spot-checks are disabled so every warm
// lookup actually exercises the fast path.
type wrapperExtractor struct {
	store   *template.Store
	metrics *obs.Registry
}

func newWrapperExtractor() Extractor {
	metrics := obs.NewRegistry()
	store, err := template.Open(template.Config{Metrics: metrics})
	if err != nil {
		// Memory-only stores cannot fail to open; keep the constructor
		// signature simple for the registry.
		panic("eval: opening in-memory template store: " + err.Error())
	}
	return &wrapperExtractor{store: store, metrics: metrics}
}

func (e *wrapperExtractor) Name() string { return "wrapper" }

func (e *wrapperExtractor) Extract(doc *corpus.Document, ont *ontology.Ontology) ([]tagtree.Span, error) {
	arena := tagtree.AcquireArena()
	defer arena.Release()
	opts := core.Options{
		Ontology:     ont,
		Templates:    e.store,
		TemplateSalt: template.Salt("html", string(doc.Site.Domain), nil),
		Arena:        arena,
	}
	if _, err := core.Discover(doc.HTML, opts); err != nil { // cold: learn
		return nil, err
	}
	res, err := core.Discover(doc.HTML, opts) // warm: served from the store
	if err != nil {
		return nil, err
	}
	return res.Boundaries(doc.HTML), nil
}

// fanoutExtractor is the trivial baseline: no heuristics, no certainty —
// just the most frequent candidate tag inside the highest-fan-out subtree.
// Any method that cannot beat it is not contributing evidence.
type fanoutExtractor struct{}

func (fanoutExtractor) Name() string { return "fanout-top" }

func (fanoutExtractor) Extract(doc *corpus.Document, _ *ontology.Ontology) ([]tagtree.Span, error) {
	tree := tagtree.Parse(doc.HTML)
	sub := tree.HighestFanOut()
	cands := tagtree.Candidates(sub, tagtree.DefaultCandidateThreshold)
	if len(cands) == 0 {
		return nil, core.ErrNoCandidates
	}
	res := &core.Result{Separator: cands[0].Name, Subtree: sub, Tree: tree}
	return res.Boundaries(doc.HTML), nil
}
