package eval

// The quality-regression gate: the leaderboard counterpart of cmd/benchjson's
// -compare mode. A fresh QualityReport is diffed against a committed
// QUALITY_<n>.json baseline and the gate fails when any tracked extractor's
// F1 — exact or forgiving, micro-aggregated — dropped by more than the
// tolerance in absolute points. Improvements, extractors present on only
// one side, and corpus-size changes are reported informationally, never as
// failures: the gate catches regressions, not leaderboard growth.

import (
	"fmt"
	"io"
	"strings"
)

// DefaultQualityTolerance is the allowed absolute F1 drop (0.02 = two
// points) before the gate fails. Quality on a deterministic corpus has no
// measurement noise, so the tolerance only absorbs intentional minor
// trade-offs; anything larger must be an explicit baseline update.
const DefaultQualityTolerance = 0.02

// CompareQuality diffs current against baseline, writing one line per
// extractor to w, and returns an error naming every extractor whose exact
// or forgiving F1 dropped by more than tolerance.
func CompareQuality(baseline, current *QualityReport, tolerance float64, w io.Writer) error {
	if tolerance <= 0 {
		return fmt.Errorf("tolerance must be > 0, got %v", tolerance)
	}
	if baseline.Documents != current.Documents {
		fmt.Fprintf(w, "note: corpus size changed: %d -> %d documents\n",
			baseline.Documents, current.Documents)
	}
	if baseline.SlackBytes != current.SlackBytes {
		fmt.Fprintf(w, "note: slack changed: %d -> %d bytes\n",
			baseline.SlackBytes, current.SlackBytes)
	}

	var regressions []string
	matched := map[string]bool{}
	for _, cur := range current.Extractors {
		base, ok := baseline.Row(cur.Name)
		if !ok {
			fmt.Fprintf(w, "new       %-14s forgiving F1 %6.2f%% (no baseline)\n",
				cur.Name, cur.Forgiving.F1*100)
			continue
		}
		matched[cur.Name] = true
		deltaExact := cur.Exact.F1 - base.Exact.F1
		deltaForgiving := cur.Forgiving.F1 - base.Forgiving.F1
		status := "ok"
		switch {
		case deltaExact < -tolerance || deltaForgiving < -tolerance:
			status = "BELOW"
			regressions = append(regressions, fmt.Sprintf(
				"%s: exact F1 %.2f%% -> %.2f%% (%+.2f), forgiving F1 %.2f%% -> %.2f%% (%+.2f)",
				cur.Name,
				base.Exact.F1*100, cur.Exact.F1*100, deltaExact*100,
				base.Forgiving.F1*100, cur.Forgiving.F1*100, deltaForgiving*100))
		case deltaExact > tolerance || deltaForgiving > tolerance:
			status = "better"
		}
		fmt.Fprintf(w, "%-9s %-14s exact F1 %6.2f%% -> %6.2f%% (%+5.2f)  forgiving F1 %6.2f%% -> %6.2f%% (%+5.2f)\n",
			status, cur.Name,
			base.Exact.F1*100, cur.Exact.F1*100, deltaExact*100,
			base.Forgiving.F1*100, cur.Forgiving.F1*100, deltaForgiving*100)
	}
	for _, base := range baseline.Extractors {
		if !matched[base.Name] {
			fmt.Fprintf(w, "gone      %-14s forgiving F1 was %6.2f%% in the baseline\n",
				base.Name, base.Forgiving.F1*100)
		}
	}

	if len(regressions) > 0 {
		return fmt.Errorf("%d extractor(s) regressed beyond the %.1f-point F1 tolerance:\n  %s",
			len(regressions), tolerance*100, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "no tracked extractor regressed beyond %.1f F1 points of the baseline (%d matched)\n",
		tolerance*100, len(matched))
	return nil
}
