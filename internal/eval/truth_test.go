package eval

// Grounding of the evaluation harness's truth oracle: TruthSegmentations
// derives record boundaries by splitting at a document's known-correct
// separator, and the corpus generator independently records each record's
// byte span while writing the page. The two must agree exactly on every
// clean corpus document — otherwise either the oracle or the generator
// bookkeeping is wrong, and every leaderboard number is suspect.

import (
	"testing"
)

func TestTruthSegmentationsMatchGeneratorBoundaries(t *testing.T) {
	for _, doc := range fullCorpus() {
		truths := TruthSegmentations(doc)
		if len(truths) == 0 {
			t.Errorf("%s/%d: no truth segmentations", doc.Site.Name, doc.Index)
			continue
		}
		// The first segmentation is the profile's primary separator — the
		// same segmentation the generator recorded.
		got := truths[0]
		if len(got) != len(doc.Boundaries) {
			t.Errorf("%s/%d (%s): oracle found %d records, generator recorded %d",
				doc.Site.Name, doc.Index, doc.Site.Domain, len(got), len(doc.Boundaries))
			continue
		}
		for i := range got {
			if got[i] != doc.Boundaries[i] {
				t.Errorf("%s/%d (%s): record %d: oracle %+v, generator %+v",
					doc.Site.Name, doc.Index, doc.Site.Domain, i, got[i], doc.Boundaries[i])
				break
			}
		}
		// Every segmentation must cover the same record count: alternate
		// truth tags (a wrapped row's inner cell) split the records too.
		for s, spans := range truths {
			if len(spans) != doc.Records {
				t.Errorf("%s/%d: segmentation %d has %d spans, want %d records",
					doc.Site.Name, doc.Index, s, len(spans), doc.Records)
			}
		}
	}
}

// TestGeneratorBoundariesWellFormed pins the structural invariants of the
// planted ground truth: one ascending, non-overlapping span per record,
// inside the document, each starting at the record's separator tag.
func TestGeneratorBoundariesWellFormed(t *testing.T) {
	for _, doc := range fullCorpus() {
		if len(doc.Boundaries) != doc.Records {
			t.Fatalf("%s/%d: %d boundary spans for %d records",
				doc.Site.Name, doc.Index, len(doc.Boundaries), doc.Records)
		}
		prevEnd := 0
		for i, sp := range doc.Boundaries {
			if sp.Start < prevEnd || sp.End <= sp.Start || sp.End > len(doc.HTML) {
				t.Fatalf("%s/%d: span %d %+v malformed (prev end %d, doc %d bytes)",
					doc.Site.Name, doc.Index, i, sp, prevEnd, len(doc.HTML))
			}
			want := "<" + doc.Site.Profile.Separator
			if got := doc.HTML[sp.Start : sp.Start+len(want)]; got != want {
				t.Fatalf("%s/%d: span %d starts with %q, want %q",
					doc.Site.Name, doc.Index, i, got, want)
			}
			prevEnd = sp.End
		}
	}
}
