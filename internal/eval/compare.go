package eval

import (
	"fmt"
	"strings"

	"repro/internal/certainty"
	"repro/internal/corpus"
	"repro/internal/paperdata"
)

// This file renders measured results side by side with the paper's
// published numbers (internal/paperdata) — the programmatic form of
// EXPERIMENTS.md.

// FormatDistributionComparison renders a Table 2/3 analogue with the
// published numbers inline.
func FormatDistributionComparison(title string, measured, published []certainty.Distribution) string {
	pub := map[string][]float64{}
	for _, d := range published {
		pub[d.Heuristic] = d.AtRank
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %-31s %-31s\n", "Heuristic", "measured (rank 1..4)", "paper (rank 1..4)")
	for _, d := range measured {
		fmt.Fprintf(&b, "%-10s", d.Heuristic)
		b.WriteString(formatRankRow(d.AtRank))
		b.WriteString(formatRankRow(pub[d.Heuristic]))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatRankRow(at []float64) string {
	var b strings.Builder
	for i := 0; i < MaxRank; i++ {
		v := 0.0
		if i < len(at) {
			v = at[i]
		}
		fmt.Fprintf(&b, " %6.1f%%", v*100)
	}
	b.WriteString("  ")
	return b.String()
}

// FormatSuccessComparison renders Table 10 with the paper's column.
func FormatSuccessComparison(measured map[string]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "Heuristic", "measured", "paper", "delta")
	for _, h := range append(append([]string{}, certainty.AllHeuristics...), "ORSIH") {
		m, p := measured[h], paperdata.Table10[h]
		fmt.Fprintf(&b, "%-10s %9.1f%% %9.1f%% %+9.1f%%\n", h, m*100, p*100, (m-p)*100)
	}
	return b.String()
}

// publishedTestRows returns the paper's rows for a domain.
func publishedTestRows(d corpus.Domain) []paperdata.TestRow {
	switch d {
	case corpus.Obituaries:
		return paperdata.Table6
	case corpus.CarAds:
		return paperdata.Table7
	case corpus.JobAds:
		return paperdata.Table8
	case corpus.Courses:
		return paperdata.Table9
	default:
		return nil
	}
}

// FormatTestComparison renders a Tables 6–9 analogue annotating each rank
// with the paper's value where it differs, as "measured(paper)".
func FormatTestComparison(title string, d corpus.Domain, rows []TestRow) string {
	published := publishedTestRows(d)
	pubBySite := map[string]paperdata.TestRow{}
	for _, r := range published {
		pubBySite[r.Site] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [measured(paper) where they differ]\n", title)
	fmt.Fprintf(&b, "%-28s %6s %6s %6s %6s %6s %6s\n", "Site", "OM", "RP", "SD", "IT", "HT", "A")
	for _, row := range rows {
		pub := pubBySite[row.Site]
		fmt.Fprintf(&b, "%-28s", row.Site)
		for _, h := range append(append([]string{}, certainty.AllHeuristics...), "A") {
			measured := row.A
			if h != "A" {
				measured = row.Ranks[h]
			}
			if p := pub.Rank(h); p != 0 && p != measured {
				fmt.Fprintf(&b, " %3d(%d)", measured, p)
			} else {
				fmt.Fprintf(&b, " %6d", measured)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable5Comparison renders the combination sweep with the paper's
// published rates.
func FormatTable5Comparison(rows []CombinationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "Compound", "measured", "paper")
	for _, r := range rows {
		ab := r.Combination.Abbrev()
		fmt.Fprintf(&b, "%-10s %9.2f%% %9.2f%%\n", ab, r.SuccessRate*100, paperdata.Table5[ab]*100)
	}
	return b.String()
}
