// Package eval is the experiment harness: it runs the individual and
// compound heuristics over corpora with ground truth and computes every
// statistic the paper reports — ranking distributions (Tables 2, 3),
// calibrated certainty factors (Table 4), combination success rates
// (Table 5), per-site test rankings (Tables 6–9), and overall success rates
// (Table 10).
package eval

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/certainty"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/heuristic"
)

// MaxRank is the deepest rank the paper's tables track; a correct separator
// ranked deeper (or absent from a heuristic's answer) is recorded at
// MaxRank+1.
const MaxRank = 4

// DocResult is the evaluated outcome for one document.
type DocResult struct {
	Doc *corpus.Document
	// HeuristicRank maps heuristic name → best rank of any correct
	// separator (MaxRank+1 when unranked); heuristics that declined to
	// answer are absent.
	HeuristicRank map[string]int
	// Rankings holds the raw per-heuristic rankings.
	Rankings map[string]heuristic.Ranking
	// Compound holds the full compound result.
	Compound *core.Result
	// CompoundRank is the best rank of a correct separator in the compound
	// scores (by distinct CF values).
	CompoundRank int
	// Success is the paper's sc(D) = Y/X: the fraction of the top-scored
	// tags that are correct separators.
	Success float64
}

// Evaluate runs discovery on one document and scores every heuristic and
// the compound against the document's ground truth.
func Evaluate(doc *corpus.Document, opts core.Options) (*DocResult, error) {
	if opts.Ontology == nil {
		opts.Ontology = doc.Site.Domain.Ontology()
	}
	res, err := core.Discover(doc.HTML, opts)
	if err != nil {
		return nil, fmt.Errorf("eval: %s #%d: %w", doc.Site.Name, doc.Index, err)
	}
	dr := &DocResult{
		Doc:           doc,
		HeuristicRank: make(map[string]int),
		Rankings:      res.Rankings,
		Compound:      res,
	}
	for name, ranking := range res.Rankings {
		dr.HeuristicRank[name] = bestCorrectRank(ranking, doc)
	}
	dr.CompoundRank = compoundRank(res, doc)
	dr.Success = successScore(res, doc)
	return dr, nil
}

// bestCorrectRank returns the best rank any correct separator achieved in
// the ranking, or MaxRank+1 if none is ranked.
func bestCorrectRank(r heuristic.Ranking, doc *corpus.Document) int {
	best := MaxRank + 1
	for _, t := range doc.Truth {
		if k := r.RankOf(t); k > 0 && k < best {
			best = k
		}
	}
	return best
}

// compoundRank converts compound CF scores to competition ranks over
// distinct CF values and returns the best rank of a correct separator.
func compoundRank(res *core.Result, doc *corpus.Document) int {
	rank, prevCF := 0, -1.0
	best := MaxRank + 1
	for i, s := range res.Scores {
		if s.CF != prevCF {
			rank = i + 1
			prevCF = s.CF
		}
		if doc.IsCorrect(s.Tag) && rank < best {
			best = rank
		}
	}
	return best
}

// successScore is the paper's sc(D): with X tags sharing the highest
// compound CF and Y of them correct, sc(D) = Y/X.
func successScore(res *core.Result, doc *corpus.Document) float64 {
	if len(res.TopTags) == 0 {
		return 0
	}
	y := 0
	for _, t := range res.TopTags {
		if doc.IsCorrect(t) {
			y++
		}
	}
	return float64(y) / float64(len(res.TopTags))
}

// EvaluateAll evaluates every document, failing fast on generator errors.
func EvaluateAll(docs []*corpus.Document, opts core.Options) ([]*DocResult, error) {
	out := make([]*DocResult, 0, len(docs))
	for _, d := range docs {
		dr, err := Evaluate(d, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, dr)
	}
	return out, nil
}

// EvaluateAllParallel is EvaluateAll with documents evaluated concurrently
// across workers goroutines (workers ≤ 0 selects GOMAXPROCS). Results keep
// document order. Each document's evaluation is independent, so this is
// how a production deployment would process a crawl.
func EvaluateAllParallel(docs []*corpus.Document, opts core.Options, workers int) ([]*DocResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		return EvaluateAll(docs, opts)
	}

	out := make([]*DocResult, len(docs))
	errs := make([]error, len(docs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = Evaluate(docs[i], opts)
			}
		}()
	}
	for i := range docs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RankingDistribution computes, per heuristic, the fraction of documents in
// which a correct separator was ranked 1st..MaxRank (a Table 2/3 analogue).
// A document where the heuristic declined is counted at no rank (the paper's
// training documents never hit this; synthetic ones may rarely).
func RankingDistribution(results []*DocResult) []certainty.Distribution {
	counts := map[string][]float64{}
	totals := map[string]int{}
	for _, dr := range results {
		for h, rank := range dr.HeuristicRank {
			if counts[h] == nil {
				counts[h] = make([]float64, MaxRank)
			}
			totals[h]++
			if rank >= 1 && rank <= MaxRank {
				counts[h][rank-1]++
			}
		}
	}
	var out []certainty.Distribution
	for _, h := range certainty.AllHeuristics {
		c, ok := counts[h]
		if !ok {
			continue
		}
		at := make([]float64, MaxRank)
		for i := range c {
			at[i] = c[i] / float64(totals[h])
		}
		out = append(out, certainty.Distribution{Heuristic: h, AtRank: at})
	}
	return out
}

// SuccessRate averages sc(D) over the results for one heuristic combination
// (the paper's Table 5 statistic).
func SuccessRate(results []*DocResult) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, dr := range results {
		sum += dr.Success
	}
	return sum / float64(len(results))
}

// IndividualSuccessRates computes, per heuristic, the fraction of documents
// whose correct separator that heuristic ranked first (Table 10's individual
// rows), plus the compound's average sc(D) under the key "ORSIH".
func IndividualSuccessRates(results []*DocResult) map[string]float64 {
	firsts := map[string]int{}
	for _, dr := range results {
		for h, rank := range dr.HeuristicRank {
			if rank == 1 {
				firsts[h]++
			}
		}
	}
	out := make(map[string]float64, len(firsts)+1)
	for _, h := range certainty.AllHeuristics {
		out[h] = float64(firsts[h]) / float64(len(results))
	}
	out["ORSIH"] = SuccessRate(results)
	return out
}

// CombinationResult is one row of the Table 5 sweep.
type CombinationResult struct {
	Combination certainty.Combination
	SuccessRate float64
}

// CombinationSweep evaluates every ≥2-heuristic combination over the
// documents using the given certainty table, re-scoring the cached
// individual rankings rather than re-running discovery — the sweep is how
// the paper chose ORSIH.
func CombinationSweep(results []*DocResult, table certainty.Table) []CombinationResult {
	combos := certainty.Combinations(certainty.AllHeuristics, 2)
	out := make([]CombinationResult, 0, len(combos))
	for _, combo := range combos {
		sum := 0.0
		for _, dr := range results {
			sum += rescoreSuccess(dr, combo, table)
		}
		out = append(out, CombinationResult{
			Combination: combo,
			SuccessRate: sum / float64(len(results)),
		})
	}
	return out
}

// rescoreSuccess recomputes sc(D) for one document under a different
// heuristic combination, reusing the stored rankings.
func rescoreSuccess(dr *DocResult, combo certainty.Combination, table certainty.Table) float64 {
	rankMaps := make(map[string]map[string]int, len(combo))
	for _, h := range combo {
		if r, ok := dr.Rankings[h]; ok {
			rankMaps[h] = r.ToMap()
		}
	}
	tags := make([]string, len(dr.Compound.Candidates))
	for i, c := range dr.Compound.Candidates {
		tags[i] = c.Name
	}
	scores := certainty.Compound(table, combo, rankMaps, tags)
	if len(scores) == 0 {
		return 0
	}
	top := scores[0].CF
	x, y := 0, 0
	for _, s := range scores {
		if s.CF != top {
			break
		}
		x++
		if dr.Doc.IsCorrect(s.Tag) {
			y++
		}
	}
	return float64(y) / float64(x)
}

// TestRow is one row of a Tables 6–9 analogue: per-site ranks for every
// heuristic plus the compound (the paper's "A" column).
type TestRow struct {
	Site  string
	URL   string
	Ranks map[string]int // heuristic name → rank; 0 = declined
	A     int            // compound rank
}

// TestSetTable evaluates one test domain's sites into table rows.
func TestSetTable(d corpus.Domain) ([]TestRow, error) {
	var rows []TestRow
	for _, s := range corpus.TestSites(d) {
		doc := s.Generate(0)
		dr, err := Evaluate(doc, core.Options{})
		if err != nil {
			return nil, err
		}
		row := TestRow{Site: s.Name, URL: s.URL, Ranks: map[string]int{}, A: dr.CompoundRank}
		for _, h := range certainty.AllHeuristics {
			row.Ranks[h] = dr.HeuristicRank[h] // zero when declined
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatDistributions renders Table 2/3-style output.
func FormatDistributions(title string, dists []certainty.Distribution) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s\n", "Heuristic", "1", "2", "3", "4")
	for _, d := range dists {
		fmt.Fprintf(&b, "%-10s", d.Heuristic)
		for _, v := range d.AtRank {
			fmt.Fprintf(&b, " %7.1f%%", v*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatCertaintyTable renders a Table 4-style certainty-factor table.
func FormatCertaintyTable(title string, t certainty.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s\n", "Heuristic", "1", "2", "3", "4")
	for _, h := range certainty.AllHeuristics {
		fs := t[h]
		fmt.Fprintf(&b, "%-10s", h)
		for i := 0; i < MaxRank; i++ {
			v := 0.0
			if i < len(fs) {
				v = fs[i]
			}
			fmt.Fprintf(&b, " %7.1f%%", v*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatCombinations renders the Table 5 sweep sorted like the paper (by
// combination size then canonical letters).
func FormatCombinations(rows []CombinationResult) string {
	sorted := append([]CombinationResult(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i].Combination, sorted[j].Combination
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a.Abbrev() < b.Abbrev()
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s\n", "Compound", "Success Rate")
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-10s %11.2f%%\n", r.Combination.Abbrev(), r.SuccessRate*100)
	}
	return b.String()
}

// FormatTestTable renders a Tables 6–9 analogue.
func FormatTestTable(title string, rows []TestRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s %3s %3s %3s %3s %3s %3s\n", "Site", "OM", "RP", "SD", "IT", "HT", "A")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s", row.Site)
		for _, h := range certainty.AllHeuristics {
			fmt.Fprintf(&b, " %3d", row.Ranks[h])
		}
		fmt.Fprintf(&b, " %3d\n", row.A)
	}
	return b.String()
}

// FormatSuccessRates renders Table 10.
func FormatSuccessRates(rates map[string]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s\n", "Heuristic", "Success Rate")
	for _, h := range append(append([]string{}, certainty.AllHeuristics...), "ORSIH") {
		fmt.Fprintf(&b, "%-10s %11.1f%%\n", h, rates[h]*100)
	}
	return b.String()
}
