package eval

import (
	"strings"
	"testing"
)

// gateReport builds a small QualityReport for gate tests; f1 maps extractor
// name to both micro F1s (exact == forgiving, the common perfect case).
func gateReport(f1 map[string]float64) *QualityReport {
	r := &QualityReport{Documents: 220, SlackBytes: DefaultBoundarySlack}
	for name, v := range f1 {
		r.Extractors = append(r.Extractors, ExtractorQuality{
			Name:      name,
			Exact:     MetricSet{F1: v},
			Forgiving: MetricSet{F1: v},
		})
	}
	return r
}

func TestCompareQualityPassesOnIdenticalReports(t *testing.T) {
	base := gateReport(map[string]float64{"ORSIH": 1.0, "OM-only": 0.8})
	var out strings.Builder
	if err := CompareQuality(base, gateReport(map[string]float64{"ORSIH": 1.0, "OM-only": 0.8}), DefaultQualityTolerance, &out); err != nil {
		t.Fatalf("identical reports must pass the gate: %v", err)
	}
	if !strings.Contains(out.String(), "no tracked extractor regressed") {
		t.Errorf("missing pass summary:\n%s", out.String())
	}
}

// TestCompareQualityFailsOnRegression is the acceptance check: an injected
// drop of more than two F1 points on any tracked extractor fails the gate
// and names the extractor.
func TestCompareQualityFailsOnRegression(t *testing.T) {
	base := gateReport(map[string]float64{"ORSIH": 1.0, "OM-only": 0.8})
	cur := gateReport(map[string]float64{"ORSIH": 1.0, "OM-only": 0.775}) // -2.5 points
	var out strings.Builder
	err := CompareQuality(base, cur, DefaultQualityTolerance, &out)
	if err == nil {
		t.Fatal("a 2.5-point F1 drop must fail the gate")
	}
	if !strings.Contains(err.Error(), "OM-only") {
		t.Errorf("gate error does not name the regressed extractor: %v", err)
	}
	if !strings.Contains(out.String(), "BELOW") {
		t.Errorf("regressed row not flagged BELOW:\n%s", out.String())
	}
}

func TestCompareQualityToleratesSmallDrop(t *testing.T) {
	base := gateReport(map[string]float64{"ORSIH": 1.0})
	cur := gateReport(map[string]float64{"ORSIH": 0.99}) // -1 point, within 2
	if err := CompareQuality(base, cur, DefaultQualityTolerance, &strings.Builder{}); err != nil {
		t.Fatalf("a 1-point drop is within tolerance: %v", err)
	}
}

// TestCompareQualityForgivingRegressionAlone: the gate watches both
// variants — a forgiving-only drop fails even when exact is stable.
func TestCompareQualityForgivingRegressionAlone(t *testing.T) {
	base := gateReport(map[string]float64{"RP-only": 0.6})
	cur := gateReport(map[string]float64{"RP-only": 0.6})
	cur.Extractors[0].Forgiving.F1 = 0.55
	if err := CompareQuality(base, cur, DefaultQualityTolerance, &strings.Builder{}); err == nil {
		t.Fatal("a forgiving-only regression must fail the gate")
	}
}

// TestCompareQualityNewAndGoneAreInformational: extractors present on only
// one side never fail the gate — it catches regressions, not registry
// growth.
func TestCompareQualityNewAndGoneAreInformational(t *testing.T) {
	base := gateReport(map[string]float64{"ORSIH": 1.0, "retired": 0.5})
	cur := gateReport(map[string]float64{"ORSIH": 1.0, "novel": 0.1})
	var out strings.Builder
	if err := CompareQuality(base, cur, DefaultQualityTolerance, &out); err != nil {
		t.Fatalf("new/gone extractors must be informational: %v", err)
	}
	for _, want := range []string{"new", "novel", "gone", "retired"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCompareQualityImprovementIsBetter(t *testing.T) {
	base := gateReport(map[string]float64{"SD-only": 0.6})
	cur := gateReport(map[string]float64{"SD-only": 0.7})
	var out strings.Builder
	if err := CompareQuality(base, cur, DefaultQualityTolerance, &out); err != nil {
		t.Fatalf("improvements must pass: %v", err)
	}
	if !strings.Contains(out.String(), "better") {
		t.Errorf("improvement not flagged:\n%s", out.String())
	}
}

func TestCompareQualityRejectsBadTolerance(t *testing.T) {
	base := gateReport(nil)
	for _, tol := range []float64{0, -0.02} {
		if err := CompareQuality(base, base, tol, &strings.Builder{}); err == nil {
			t.Errorf("tolerance %v must be rejected", tol)
		}
	}
}

func TestCompareQualityNotesCorpusChanges(t *testing.T) {
	base := gateReport(map[string]float64{"ORSIH": 1.0})
	cur := gateReport(map[string]float64{"ORSIH": 1.0})
	cur.Documents = 240
	cur.SlackBytes = 32
	var out strings.Builder
	if err := CompareQuality(base, cur, DefaultQualityTolerance, &out); err != nil {
		t.Fatalf("corpus-shape changes are notes, not failures: %v", err)
	}
	if !strings.Contains(out.String(), "corpus size changed") || !strings.Contains(out.String(), "slack changed") {
		t.Errorf("missing corpus-change notes:\n%s", out.String())
	}
}
