package eval

import (
	"strings"
	"testing"

	"repro/internal/corpus"
)

func TestAblateThreshold(t *testing.T) {
	docs := corpus.TestDocuments()
	rows, err := AblateThreshold(docs, []float64{0.02, 0.05, 0.10, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byTh := map[float64]ThresholdAblation{}
	for _, r := range rows {
		byTh[r.Threshold] = r
	}

	// The paper's 10% choice must be perfect on the test corpus.
	if r := byTh[0.10]; r.SuccessRate != 1.0 || r.SeparatorLost != 0 {
		t.Errorf("10%% row: %+v, want perfect", r)
	}
	// Lower thresholds admit more candidates.
	if byTh[0.02].MeanCandidates < byTh[0.10].MeanCandidates {
		t.Errorf("2%% mean candidates %.1f should exceed 10%%'s %.1f",
			byTh[0.02].MeanCandidates, byTh[0.10].MeanCandidates)
	}
	// An aggressive 25% cutoff eliminates correct separators on some
	// layouts — the reason the paper picked a permissive 10%.
	if byTh[0.25].SeparatorLost == 0 {
		t.Log("note: 25% cutoff lost no separators on this corpus")
	}
	if byTh[0.25].SuccessRate > byTh[0.10].SuccessRate {
		t.Errorf("25%% (%.2f) should not beat 10%% (%.2f)",
			byTh[0.25].SuccessRate, byTh[0.10].SuccessRate)
	}
}

func TestFormatThresholdAblation(t *testing.T) {
	out := FormatThresholdAblation([]ThresholdAblation{
		{Threshold: 0.1, SuccessRate: 1, MeanCandidates: 3.2, SeparatorLost: 0},
	})
	if !strings.Contains(out, "10%") || !strings.Contains(out, "100.0%") {
		t.Errorf("output:\n%s", out)
	}
}
