package eval

// The leaderboard: every registered Extractor scored over one corpus with
// structural matching, aggregated per extractor at corpus level (micro:
// pooled match counts; macro: mean per-document F1), rendered as a table
// and serialized as a QUALITY_<n>.json report. The report is deterministic
// byte for byte — fixed extractor registry, deterministic corpus,
// order-independent aggregation, six-decimal rounding — so it supports the
// same committed-baseline regression gating that BENCH_<n>.json gives
// performance (see CompareQuality and `evalrun -compare`).

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/tagtree"
)

// QualityOptions configure a leaderboard run. The zero value scores the
// registered extractors with DefaultBoundarySlack across GOMAXPROCS
// workers.
type QualityOptions struct {
	// Slack is the forgiving variant's boundary tolerance in bytes; 0
	// means DefaultBoundarySlack.
	Slack int
	// Workers bounds evaluation concurrency; <= 0 means GOMAXPROCS.
	// Concurrency never changes the report: per-document results land in
	// per-index slots and are reduced in document order.
	Workers int
	// Extractors overrides the method registry; nil means Registrations().
	Extractors []Registration
}

func (o QualityOptions) slack() int {
	if o.Slack == 0 {
		return DefaultBoundarySlack
	}
	return o.Slack
}

func (o QualityOptions) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o QualityOptions) registrations() []Registration {
	if o.Extractors == nil {
		return Registrations()
	}
	return o.Extractors
}

// MetricSet is one variant's corpus-level outcome: pooled match counts and
// the micro precision/recall/F1 they induce.
type MetricSet struct {
	Counts
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

func newMetricSet(c Counts) MetricSet {
	return MetricSet{
		Counts:    c,
		Precision: round6(c.Precision()),
		Recall:    round6(c.Recall()),
		F1:        round6(c.F1()),
	}
}

// ExtractorQuality is one leaderboard row.
type ExtractorQuality struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Documents is how many documents the extractor was scored on; Errors
	// how many of those failed outright (scored as empty predictions).
	Documents int `json:"documents"`
	Errors    int `json:"errors"`
	// Exact and Forgiving are the micro-aggregated variants.
	Exact     MetricSet `json:"exact"`
	Forgiving MetricSet `json:"forgiving"`
	// MacroF1* average the per-document F1, weighting every document
	// equally regardless of record count.
	MacroF1Exact     float64 `json:"macro_f1_exact"`
	MacroF1Forgiving float64 `json:"macro_f1_forgiving"`
}

// QualityReport is the machine-readable leaderboard (QUALITY_<n>.json).
// Extractors are in leaderboard order: descending forgiving F1, then
// descending exact F1, then name.
type QualityReport struct {
	Documents  int                `json:"documents"`
	SlackBytes int                `json:"slack_bytes"`
	Extractors []ExtractorQuality `json:"extractors"`
}

// Row returns the named extractor's leaderboard row, if present.
func (r *QualityReport) Row(name string) (ExtractorQuality, bool) {
	for _, e := range r.Extractors {
		if e.Name == name {
			return e, true
		}
	}
	return ExtractorQuality{}, false
}

// TruthSegmentations materializes every acceptable ground-truth
// segmentation of a document: one span list per correct separator tag
// (most documents have exactly one; wrapped table rows also accept the
// inner cell). Segmentations come from the oracle splitter — parse, locate
// the highest-fan-out subtree, split at the known-correct tag — so they are
// well-defined for any document variant carrying the same truth tags,
// including corpus.Mangle output whose byte offsets have shifted.
func TruthSegmentations(doc *corpus.Document) [][]tagtree.Span {
	var out [][]tagtree.Span
	for _, sep := range doc.Truth {
		recs, err := core.SplitAt(doc.HTML, sep, tagtree.Limits{})
		if err != nil || len(recs) == 0 {
			continue
		}
		spans := make([]tagtree.Span, len(recs))
		for i, rec := range recs {
			spans[i] = tagtree.Span{Start: rec.Start, End: rec.End}
		}
		out = append(out, spans)
	}
	return out
}

// RunLeaderboard scores every registered extractor over the documents and
// assembles the report. Extractor failures on individual documents count
// against that extractor (empty prediction, Errors incremented); they never
// abort the run.
func RunLeaderboard(docs []*corpus.Document, opt QualityOptions) *QualityReport {
	slack := opt.slack()

	// Ground truth once per document, shared by every extractor.
	truths := make([][][]tagtree.Span, len(docs))
	forEachIndex(len(docs), opt.workers(len(docs)), func(i int) {
		truths[i] = TruthSegmentations(docs[i])
	})

	report := &QualityReport{Documents: len(docs), SlackBytes: slack}
	for _, reg := range opt.registrations() {
		ext := reg.New()
		scores := make([]BoundaryScore, len(docs))
		failed := make([]bool, len(docs))
		forEachIndex(len(docs), opt.workers(len(docs)), func(i int) {
			doc := docs[i]
			spans, err := ext.Extract(doc, doc.Site.Domain.Ontology())
			if err != nil {
				failed[i] = true
				spans = nil
			}
			scores[i] = ScoreBoundaries(spans, truths[i], slack)
		})

		row := ExtractorQuality{
			Name:        reg.Name,
			Description: reg.Description,
			Documents:   len(docs),
		}
		var exact, forgiving Counts
		var macroExact, macroForgiving float64
		for i, s := range scores {
			if failed[i] {
				row.Errors++
			}
			exact.Add(s.Exact)
			forgiving.Add(s.Forgiving)
			macroExact += s.Exact.F1()
			macroForgiving += s.Forgiving.F1()
		}
		row.Exact = newMetricSet(exact)
		row.Forgiving = newMetricSet(forgiving)
		if len(docs) > 0 {
			row.MacroF1Exact = round6(macroExact / float64(len(docs)))
			row.MacroF1Forgiving = round6(macroForgiving / float64(len(docs)))
		}
		report.Extractors = append(report.Extractors, row)
	}

	sort.SliceStable(report.Extractors, func(i, j int) bool {
		a, b := report.Extractors[i], report.Extractors[j]
		if a.Forgiving.F1 != b.Forgiving.F1 {
			return a.Forgiving.F1 > b.Forgiving.F1
		}
		if a.Exact.F1 != b.Exact.F1 {
			return a.Exact.F1 > b.Exact.F1
		}
		return a.Name < b.Name
	})
	return report
}

// forEachIndex runs fn(0..n-1) across workers goroutines and waits.
func forEachIndex(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// FormatLeaderboard renders the report as the deterministic table evalrun
// prints.
func FormatLeaderboard(r *QualityReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "record-boundary extraction leaderboard — %d documents, slack ±%d bytes\n",
		r.Documents, r.SlackBytes)
	fmt.Fprintf(&b, "%4s %-12s %5s %8s %8s %8s %8s %8s %8s %9s %9s\n",
		"rank", "extractor", "errs",
		"exP", "exR", "exF1",
		"fgP", "fgR", "fgF1",
		"macroEx", "macroFg")
	for i, e := range r.Extractors {
		fmt.Fprintf(&b, "%4d %-12s %5d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.1f%% %8.1f%%\n",
			i+1, e.Name, e.Errors,
			e.Exact.Precision*100, e.Exact.Recall*100, e.Exact.F1*100,
			e.Forgiving.Precision*100, e.Forgiving.Recall*100, e.Forgiving.F1*100,
			e.MacroF1Exact*100, e.MacroF1Forgiving*100)
	}
	return b.String()
}
