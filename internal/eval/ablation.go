package eval

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
)

// ThresholdAblation measures how the candidate-tag cutoff (the paper's 10%
// rule, §3) affects the compound heuristic's success rate — the accuracy
// side of the ablation (BenchmarkAblationCandidateThreshold measures the
// cost side).
type ThresholdAblation struct {
	Threshold float64
	// SuccessRate is ORSIH's mean sc(D) at this cutoff.
	SuccessRate float64
	// MeanCandidates is the average candidate-set size.
	MeanCandidates float64
	// SeparatorLost counts documents where no correct separator survived
	// the cutoff (too aggressive a threshold eliminates the answer).
	SeparatorLost int
}

// AblateThreshold sweeps candidate thresholds over a document set.
func AblateThreshold(docs []*corpus.Document, thresholds []float64) ([]ThresholdAblation, error) {
	out := make([]ThresholdAblation, 0, len(thresholds))
	for _, th := range thresholds {
		row := ThresholdAblation{Threshold: th}
		totalCands := 0
		for _, d := range docs {
			dr, err := Evaluate(d, core.Options{CandidateThreshold: th})
			if err != nil {
				return nil, err
			}
			row.SuccessRate += dr.Success
			totalCands += len(dr.Compound.Candidates)
			found := false
			for _, c := range dr.Compound.Candidates {
				if d.IsCorrect(c.Name) {
					found = true
				}
			}
			if !found {
				row.SeparatorLost++
			}
		}
		row.SuccessRate /= float64(len(docs))
		row.MeanCandidates = float64(totalCands) / float64(len(docs))
		out = append(out, row)
	}
	return out, nil
}

// FormatThresholdAblation renders the sweep.
func FormatThresholdAblation(rows []ThresholdAblation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %13s %16s %15s\n", "threshold", "ORSIH sc", "mean candidates", "separator lost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9.0f%% %12.1f%% %16.1f %15d\n",
			r.Threshold*100, r.SuccessRate*100, r.MeanCandidates, r.SeparatorLost)
	}
	return b.String()
}
