package eval

// Metamorphic suite for the leaderboard itself: every registered extractor's
// corpus-level quality must be invariant under corpus.Mangle. The manglings
// shift byte offsets, so this only holds because ground truth is re-derived
// by the oracle (TruthSegmentations) from whatever HTML the document
// carries — which is exactly the property the suite is meant to pin down.
// An extractor whose exact score moves under mangling is either sensitive
// to markup noise the tag-tree normalization should absorb, or scored
// against stale offsets.
//
// The exact variant must match strictly. The forgiving variant measures
// near-misses in bytes, and manglings insert bytes (comments, whitespace)
// between a wrong separator and the true boundary — so for extractors that
// pick the wrong tag, slack matches can legitimately cross the ±16-byte
// threshold. That drift is bounded, not eliminated: a few points at most,
// never enough to reorder the leaderboard tiers.

import (
	"testing"

	"repro/internal/corpus"
)

// mangledCorpus deep-copies docs with Mangle applied to each document's
// HTML. Generator-recorded Boundaries are dropped: they index the clean
// bytes, and the leaderboard must not depend on them.
func mangledCorpus(docs []*corpus.Document, seed int64) []*corpus.Document {
	out := make([]*corpus.Document, len(docs))
	for i, doc := range docs {
		md := *doc
		md.HTML = corpus.Mangle(doc.HTML, seed+int64(i))
		md.Boundaries = nil
		out[i] = &md
	}
	return out
}

func TestLeaderboardInvariantUnderMangling(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus metamorphic quality sweep is slow")
	}
	docs := fullCorpus()
	clean := RunLeaderboard(docs, QualityOptions{})

	for _, seed := range []int64{11, 12, 13} {
		report := RunLeaderboard(mangledCorpus(docs, seed), QualityOptions{})
		if len(report.Extractors) != len(clean.Extractors) {
			t.Fatalf("seed %d: %d leaderboard rows, clean run had %d",
				seed, len(report.Extractors), len(clean.Extractors))
		}
		const slackDrift = 0.03 // observed max ≈ 2.2 points (RP-only macro)
		for _, cleanRow := range clean.Extractors {
			row, ok := report.Row(cleanRow.Name)
			if !ok {
				t.Errorf("seed %d: extractor %s missing from mangled leaderboard", seed, cleanRow.Name)
				continue
			}
			if row.Errors != cleanRow.Errors {
				t.Errorf("seed %d: %s errors changed under mangling: %d → %d",
					seed, cleanRow.Name, cleanRow.Errors, row.Errors)
			}
			if row.Exact != cleanRow.Exact || row.MacroF1Exact != cleanRow.MacroF1Exact {
				t.Errorf("seed %d: %s exact quality changed under mangling:\n  clean   %+v macro %v\n  mangled %+v macro %v",
					seed, cleanRow.Name, cleanRow.Exact, cleanRow.MacroF1Exact, row.Exact, row.MacroF1Exact)
			}
			if d := row.Forgiving.F1 - cleanRow.Forgiving.F1; d > slackDrift || d < -slackDrift {
				t.Errorf("seed %d: %s forgiving F1 drifted %+.4f under mangling (bound ±%.2f)",
					seed, cleanRow.Name, d, slackDrift)
			}
			if d := row.MacroF1Forgiving - cleanRow.MacroF1Forgiving; d > slackDrift || d < -slackDrift {
				t.Errorf("seed %d: %s forgiving macro F1 drifted %+.4f under mangling (bound ±%.2f)",
					seed, cleanRow.Name, d, slackDrift)
			}
		}
	}
}
