package eval

// Property-based tests for the structural-match metric. Rather than pinning
// hand-picked examples, these sweep randomly generated partitions (seeded,
// so failures reproduce) and assert the properties any record-level
// boundary metric must have: scores bounded in [0,1], F1 = 1 exactly when
// the partitions agree, corpus aggregates blind to document order, and
// scores that only degrade as predictions are perturbed further from the
// truth.

import (
	"math/rand"
	"testing"

	"repro/internal/tagtree"
)

// randomPartition generates an ascending, non-overlapping span list —
// the shape every extractor and every truth segmentation has.
func randomPartition(r *rand.Rand, maxSpans int) []tagtree.Span {
	n := r.Intn(maxSpans + 1)
	spans := make([]tagtree.Span, 0, n)
	pos := r.Intn(64)
	for i := 0; i < n; i++ {
		start := pos + r.Intn(32)
		end := start + 1 + r.Intn(400)
		spans = append(spans, tagtree.Span{Start: start, End: end})
		pos = end
	}
	return spans
}

func TestScoreBoundariesBounded(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 2000; iter++ {
		pred := randomPartition(r, 8)
		truths := make([][]tagtree.Span, r.Intn(3))
		for i := range truths {
			truths[i] = randomPartition(r, 8)
		}
		slack := r.Intn(64)
		s := ScoreBoundaries(pred, truths, slack)
		for _, c := range []Counts{s.Exact, s.Forgiving} {
			if c.Matched < 0 || c.Matched > c.Predicted || c.Matched > c.Truth {
				t.Fatalf("iter %d: impossible counts %+v", iter, c)
			}
			for name, v := range map[string]float64{
				"precision": c.Precision(), "recall": c.Recall(), "f1": c.F1(),
			} {
				if v < 0 || v > 1 {
					t.Fatalf("iter %d: %s = %v out of [0,1] for %+v", iter, name, v, c)
				}
			}
		}
		// Slack can only help: forgiving matches ⊇ exact matches.
		if s.Forgiving.Matched < s.Exact.Matched {
			t.Fatalf("iter %d: forgiving matched %d < exact matched %d",
				iter, s.Forgiving.Matched, s.Exact.Matched)
		}
	}
}

// TestExactF1IffEqual: with slack 0, F1 = 1 exactly when the prediction is
// one of the truth segmentations, span for span.
func TestExactF1IffEqual(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	equalSpans := func(a, b []tagtree.Span) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for iter := 0; iter < 2000; iter++ {
		truth := randomPartition(r, 8)
		var pred []tagtree.Span
		if r.Intn(2) == 0 {
			pred = append(pred, truth...) // identical prediction
		} else {
			pred = randomPartition(r, 8)
		}
		s := ScoreBoundaries(pred, [][]tagtree.Span{truth}, 0)
		if got, want := s.Exact.F1() == 1, equalSpans(pred, truth); got != want {
			t.Fatalf("iter %d: exact F1==1 is %v, partitions equal is %v\npred  %+v\ntruth %+v",
				iter, got, want, pred, truth)
		}
	}
}

// TestAggregateOrderInvariance: micro and macro corpus aggregates must not
// depend on document order. This is the property that lets RunLeaderboard
// evaluate documents concurrently and still emit byte-identical reports.
func TestAggregateOrderInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	const docs = 50
	scores := make([]BoundaryScore, docs)
	for i := range scores {
		truth := randomPartition(r, 8)
		scores[i] = ScoreBoundaries(randomPartition(r, 8), [][]tagtree.Span{truth}, 16)
	}
	aggregate := func(order []int) (Counts, float64) {
		var micro Counts
		var macro float64
		for _, i := range order {
			micro.Add(scores[i].Forgiving)
			macro += scores[i].Forgiving.F1()
		}
		return micro, round6(macro / docs)
	}
	base := make([]int, docs)
	for i := range base {
		base[i] = i
	}
	wantMicro, wantMacro := aggregate(base)
	for trial := 0; trial < 20; trial++ {
		perm := r.Perm(docs)
		micro, macro := aggregate(perm)
		if micro != wantMicro || macro != wantMacro {
			t.Fatalf("trial %d: aggregate changed under permutation: micro %+v vs %+v, macro %v vs %v",
				trial, micro, wantMicro, macro, wantMacro)
		}
	}
}

// TestMonotonicDegradation: shifting every predicted boundary by a growing
// delta can never raise the forgiving match count — scores degrade
// monotonically as predictions move away from the truth. Spans here are
// wide relative to the delta sweep; with spans shorter than the shift, a
// prediction can legitimately realign with the NEXT truth record (the
// matcher is order-preserving, not index-preserving), which is correct
// metric behavior but not monotone.
func TestMonotonicDegradation(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for iter := 0; iter < 500; iter++ {
		truth := randomPartition(r, 8)
		for i := range truth {
			// Widen every span past the sweep's reach, preserving order:
			// records are hundreds of bytes in practice.
			truth[i].Start += 200 * i
			truth[i].End += 200 * (i + 1)
		}
		if len(truth) == 0 {
			continue
		}
		slack := 8 + r.Intn(24)
		prev := -1
		for delta := 0; delta <= 2*slack+8; delta += 2 {
			pred := make([]tagtree.Span, len(truth))
			for i, sp := range truth {
				pred[i] = tagtree.Span{Start: sp.Start + delta, End: sp.End + delta}
			}
			m := MatchCount(pred, truth, slack)
			if prev >= 0 && m > prev {
				t.Fatalf("iter %d: matches rose from %d to %d as delta grew to %d",
					iter, prev, m, delta)
			}
			prev = m
			if delta == 0 && m != len(truth) {
				t.Fatalf("iter %d: unshifted prediction matched %d of %d", iter, m, len(truth))
			}
			if delta > slack && m != 0 {
				t.Fatalf("iter %d: delta %d beyond slack %d still matched %d", iter, delta, slack, m)
			}
		}
	}
}

// TestDegradationInPerturbedCount: corrupting k of the truth's boundaries
// (beyond slack) yields an F1 that never increases with k, and each
// corruption leaves the remaining spans matched.
func TestDegradationInPerturbedCount(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	const slack = 16
	for iter := 0; iter < 500; iter++ {
		truth := randomPartition(r, 8)
		n := len(truth)
		if n == 0 {
			continue
		}
		prevF1 := 2.0
		for k := 0; k <= n; k++ {
			pred := make([]tagtree.Span, n)
			copy(pred, truth)
			for i := 0; i < k; i++ {
				// Push the span's start past the slack window while keeping
				// the list ascending: starts move toward the span's own end.
				sp := pred[i]
				shift := slack + 1
				if sp.Start+shift >= sp.End {
					shift = sp.End - sp.Start - 1
				}
				if shift <= slack { // span too short to corrupt cleanly; skip doc
					pred = nil
					break
				}
				pred[i] = tagtree.Span{Start: sp.Start + shift, End: sp.End}
			}
			if pred == nil {
				break
			}
			s := ScoreBoundaries(pred, [][]tagtree.Span{truth}, slack)
			if got, want := s.Forgiving.Matched, n-k; got != want {
				t.Fatalf("iter %d k=%d: matched %d, want %d", iter, k, got, want)
			}
			f1 := s.Forgiving.F1()
			if f1 > prevF1 {
				t.Fatalf("iter %d: F1 rose from %v to %v at k=%d", iter, prevF1, f1, k)
			}
			prevF1 = f1
		}
	}
}

// TestEmptySideConventions pins the documented conventions for empty
// predictions and empty truths.
func TestEmptySideConventions(t *testing.T) {
	span := []tagtree.Span{{Start: 0, End: 10}}
	cases := []struct {
		name        string
		pred, truth []tagtree.Span
		p, rec, f1  float64
	}{
		{"both empty", nil, nil, 1, 1, 1},
		{"empty pred", nil, span, 0, 0, 0},
		{"empty truth", span, nil, 0, 0, 0},
		{"perfect", span, span, 1, 1, 1},
	}
	for _, tc := range cases {
		s := ScoreBoundaries(tc.pred, [][]tagtree.Span{tc.truth}, 0)
		if s.Exact.Precision() != tc.p || s.Exact.Recall() != tc.rec || s.Exact.F1() != tc.f1 {
			t.Errorf("%s: got P=%v R=%v F1=%v, want P=%v R=%v F1=%v", tc.name,
				s.Exact.Precision(), s.Exact.Recall(), s.Exact.F1(), tc.p, tc.rec, tc.f1)
		}
	}
}
