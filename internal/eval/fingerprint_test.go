package eval

// Metamorphic suite for template fingerprints (internal/template, see
// docs/WRAPPER.md). The learned-wrapper fast path is only sound if the
// fingerprint obeys the same invariance as discovery itself: manglings that
// preserve a document's logical structure (corpus.Mangle — tag/attribute
// case, attribute order, omissible end-tags, comments, whitespace) must not
// move a document to a different store key, or warm traffic would silently
// fall off the fast path. The converse matters just as much: structurally
// different documents must not share a key, or the store would serve one
// template's wrapper for another. Both directions are swept over the full
// 220-document corpus here.

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/tagtree"
	"repro/internal/template"
)

// TestFingerprintManglingInvarianceFullCorpus checks fingerprint stability
// under every structure-preserving mangling, for both the doc-level scanner
// (the serving fast path) and the tree-level fingerprint (the discovery
// fallback): all four must agree, for every corpus document and seed.
func TestFingerprintManglingInvarianceFullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus fingerprint sweep is slow")
	}
	docs := fullCorpus()
	seeds := []int64{1, 2, 3}

	type job struct {
		doc  *corpus.Document
		seed int64
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				orig := template.FingerprintDoc(j.doc.HTML)
				origTree, _ := template.FingerprintTree(tagtree.Parse(j.doc.HTML))
				if orig != origTree {
					t.Errorf("%s/%d: doc and tree fingerprints disagree on the original",
						j.doc.Site.Name, j.doc.Index)
					continue
				}
				mangled := corpus.Mangle(j.doc.HTML, j.seed)
				got := template.FingerprintDoc(mangled)
				if got != orig {
					t.Errorf("%s/%d seed %d: fingerprint changed under mangling: %x → %x",
						j.doc.Site.Name, j.doc.Index, j.seed, orig[:6], got[:6])
				}
				gotTree, _ := template.FingerprintTree(tagtree.Parse(mangled))
				if gotTree != orig {
					t.Errorf("%s/%d seed %d: tree fingerprint changed under mangling",
						j.doc.Site.Name, j.doc.Index, j.seed)
				}
			}
		}()
	}
	for _, d := range docs {
		for _, seed := range seeds {
			jobs <- job{doc: d, seed: seed}
		}
	}
	close(jobs)
	wg.Wait()
	t.Logf("checked %d documents × %d seeds × doc+tree fingerprints",
		len(docs), len(seeds))
}

// TestFingerprintCorpusDistinctness checks the collision direction: every
// document in the corpus — including same-site documents, whose record
// counts and field shapes vary per instance — hashes to its own key, so no
// document can ever be served a wrapper learned from a structurally
// different page.
func TestFingerprintCorpusDistinctness(t *testing.T) {
	seen := make(map[template.Fingerprint]*corpus.Document)
	for _, d := range fullCorpus() {
		fp := template.FingerprintDoc(d.HTML)
		if prev, ok := seen[fp]; ok {
			t.Errorf("fingerprint collision: %s/%d and %s/%d share %x",
				prev.Site.Name, prev.Index, d.Site.Name, d.Index, fp[:8])
			continue
		}
		seen[fp] = d
	}
	t.Logf("%d documents, %d distinct fingerprints", len(seen), len(seen))
}

// TestFingerprintSeparatesSites pins the cross-site property on the stable
// per-site page (index 0): no two sites in any domain share a fingerprint,
// even sites with the same separator tag and layout family.
func TestFingerprintSeparatesSites(t *testing.T) {
	type where struct{ site string }
	seen := make(map[template.Fingerprint]where)
	sites := 0
	for _, dom := range corpus.AllDomains {
		for _, group := range [][]*corpus.Site{corpus.TrainingSites(dom), corpus.TestSites(dom)} {
			for _, site := range group {
				sites++
				fp := template.FingerprintDoc(site.Generate(0).HTML)
				if prev, ok := seen[fp]; ok {
					t.Errorf("sites %s and %s share a fingerprint", prev.site, site.Name)
					continue
				}
				seen[fp] = where{site: site.Name}
			}
		}
	}
	if len(seen) != sites {
		t.Errorf("%d sites produced %d distinct fingerprints", sites, len(seen))
	}
}
