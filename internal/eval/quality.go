package eval

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dbgen"
	"repro/internal/reldb"
	"repro/internal/tagtree"
)

// Quality measures the back half of the Figure 1 pipeline against the
// corpus's planted ground truth, in the terms the paper's companion work
// reports (§2: "recall ratios in the range of 90% and precision ratios near
// 95%"):
//
//	Recall    — fraction of planted field values that appear, correctly
//	            attributed, in the populated database;
//	Precision — fraction of extracted non-null cells (over the planted
//	            fields) whose value matches some planted fact.
type Quality struct {
	Planted, Recalled  int
	Extracted, Correct int
}

// Recall returns Recalled/Planted (1 when nothing was planted).
func (q Quality) Recall() float64 {
	if q.Planted == 0 {
		return 1
	}
	return float64(q.Recalled) / float64(q.Planted)
}

// Precision returns Correct/Extracted (1 when nothing was extracted).
func (q Quality) Precision() float64 {
	if q.Extracted == 0 {
		return 1
	}
	return float64(q.Correct) / float64(q.Extracted)
}

// Add accumulates another measurement.
func (q *Quality) Add(o Quality) {
	q.Planted += o.Planted
	q.Recalled += o.Recalled
	q.Extracted += o.Extracted
	q.Correct += o.Correct
}

// MeasureExtraction runs the full pipeline on the document and scores the
// populated entity table against the document's planted facts. Matching is
// set-based per column: a planted (field, value) is recalled if any row's
// cell for that field contains the value (containment, not equality —
// extraction may capture "Job #12345" where the fact says the same, or a
// name with different surrounding punctuation).
func MeasureExtraction(doc *corpus.Document) (Quality, error) {
	var q Quality
	ont := doc.Site.Domain.Ontology()
	arena := tagtree.AcquireArena()
	defer arena.Release()
	res, err := core.Discover(doc.HTML, core.Options{Ontology: ont, Arena: arena})
	if err != nil {
		return q, fmt.Errorf("quality: %s #%d: %w", doc.Site.Name, doc.Index, err)
	}
	db, err := dbgen.Populate(ont, res)
	if err != nil {
		return q, fmt.Errorf("quality: %s #%d: %w", doc.Site.Name, doc.Index, err)
	}
	rows := db.Table(ont.Entity).Select(nil)

	// The set of fields the corpus plants for this domain.
	planted := map[string]bool{}
	for _, f := range doc.Facts {
		for field := range f {
			planted[field] = true
		}
	}

	// Recall: every planted value must appear in its column.
	for _, f := range doc.Facts {
		for field, value := range f {
			q.Planted++
			if columnContains(rows, field, value) {
				q.Recalled++
			}
		}
	}

	// Precision: every extracted cell in a planted column must match some
	// fact for that field.
	values := map[string]map[string]bool{}
	for _, f := range doc.Facts {
		for field, value := range f {
			if values[field] == nil {
				values[field] = map[string]bool{}
			}
			values[field][value] = true
		}
	}
	for _, row := range rows {
		for field := range planted {
			cell := row.Get(field)
			if cell.Null || cell.Str == "" {
				continue
			}
			q.Extracted++
			if factMatches(values[field], cell.Str) {
				q.Correct++
			}
		}
	}
	return q, nil
}

func columnContains(rows []reldb.Row, field, value string) bool {
	for _, row := range rows {
		cell := row.Get(field)
		if !cell.Null && strings.Contains(cell.Str, value) || strings.Contains(value, cell.Str) && cell.Str != "" {
			return true
		}
	}
	return false
}

func factMatches(facts map[string]bool, cell string) bool {
	for v := range facts {
		if strings.Contains(cell, v) || strings.Contains(v, cell) {
			return true
		}
	}
	return false
}

// MeasureDomainExtraction aggregates extraction quality across a document
// set, keyed by domain.
func MeasureDomainExtraction(docs []*corpus.Document) (map[corpus.Domain]Quality, error) {
	out := map[corpus.Domain]Quality{}
	for _, d := range docs {
		q, err := MeasureExtraction(d)
		if err != nil {
			return nil, err
		}
		agg := out[d.Site.Domain]
		agg.Add(q)
		out[d.Site.Domain] = agg
	}
	return out, nil
}

// FormatQuality renders per-domain recall/precision like the §2 summary.
func FormatQuality(byDomain map[corpus.Domain]Quality) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %10s %9s %9s\n", "Domain", "Recall", "Precision", "Planted", "Extracted")
	for _, d := range corpus.AllDomains {
		q, ok := byDomain[d]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-28s %7.1f%% %9.1f%% %9d %9d\n",
			d.Title(), q.Recall()*100, q.Precision()*100, q.Planted, q.Extracted)
	}
	return b.String()
}
