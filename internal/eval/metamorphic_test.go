package eval

// Metamorphic suite: record-boundary discovery must be invariant under
// markup manglings that preserve a document's logical structure — random
// tag/attribute case, shuffled attribute order, dropped omissible end-tags,
// injected comments, and whitespace noise (see corpus.Mangle). Unlike
// TestDiscoveryInvariantUnderMangling, which checks correctness against
// ground truth on the 20 test documents, this suite checks the metamorphic
// relation itself — mangled output equals original output — over the FULL
// corpus (220 documents: 200 training + 20 test), so it holds even for
// documents where the compound's answer happens to be wrong. Run under
// -race it also exercises the parallel evaluation path.

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// fullCorpus returns every generated document: all training sets plus the
// test set.
func fullCorpus() []*corpus.Document {
	var docs []*corpus.Document
	for _, d := range corpus.AllDomains {
		docs = append(docs, corpus.TrainingDocuments(d)...)
	}
	return append(docs, corpus.TestDocuments()...)
}

func TestManglingInvarianceFullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus metamorphic sweep is slow")
	}
	docs := fullCorpus()
	seeds := []int64{1, 2}

	type job struct {
		doc  *corpus.Document
		seed int64
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures int

	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				orig, err := core.Discover(j.doc.HTML, core.Options{})
				if err != nil {
					t.Errorf("%s/%d: original discovery failed: %v",
						j.doc.Site.Name, j.doc.Index, err)
					continue
				}
				mangled := corpus.Mangle(j.doc.HTML, j.seed)
				res, err := core.Discover(mangled, core.Options{})
				if err != nil {
					t.Errorf("%s/%d seed %d: mangled discovery failed: %v",
						j.doc.Site.Name, j.doc.Index, j.seed, err)
					continue
				}
				if res.Separator != orig.Separator {
					mu.Lock()
					failures++
					mu.Unlock()
					t.Errorf("%s/%d seed %d: separator changed under mangling: %q → %q",
						j.doc.Site.Name, j.doc.Index, j.seed, orig.Separator, res.Separator)
				}
				if res.Subtree.Name != orig.Subtree.Name {
					t.Errorf("%s/%d seed %d: fan-out subtree changed under mangling: %q → %q",
						j.doc.Site.Name, j.doc.Index, j.seed, orig.Subtree.Name, res.Subtree.Name)
				}
			}
		}()
	}
	for _, d := range docs {
		for _, seed := range seeds {
			jobs <- job{doc: d, seed: seed}
		}
	}
	close(jobs)
	wg.Wait()
	t.Logf("checked %d documents × %d seeds (%d discoveries)",
		len(docs), len(seeds), len(docs)*len(seeds)*2)
}

// TestManglingPreservesCorrectness keeps the stronger ground-truth check on
// the test corpus: the compound must still rank a CORRECT separator first
// after mangling, seed-swept wider than the original fixture test and with
// attribute shuffling in the mix.
func TestManglingPreservesCorrectness(t *testing.T) {
	docs := corpus.TestDocuments()
	var mangledDocs []*corpus.Document
	for seed := int64(3); seed < 6; seed++ {
		for _, d := range docs {
			m := *d
			m.HTML = corpus.Mangle(d.HTML, seed)
			mangledDocs = append(mangledDocs, &m)
		}
	}
	results, err := EvaluateAllParallel(mangledDocs, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, dr := range results {
		if dr.Success != 1.0 {
			d := mangledDocs[i]
			t.Errorf("%s %s: compound failed on mangled HTML (sc=%.2f)",
				d.Site.Name, d.Site.Domain, dr.Success)
		}
	}
}
