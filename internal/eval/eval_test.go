package eval

import (
	"strings"
	"testing"

	"repro/internal/certainty"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/heuristic"
)

// trainingResults caches the evaluated training corpus across tests.
var trainingCache map[corpus.Domain][]*DocResult

func training(t *testing.T, d corpus.Domain) []*DocResult {
	t.Helper()
	if trainingCache == nil {
		trainingCache = map[corpus.Domain][]*DocResult{}
	}
	if rs, ok := trainingCache[d]; ok {
		return rs
	}
	rs, err := EvaluateAll(corpus.TrainingDocuments(d), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trainingCache[d] = rs
	return rs
}

// TestTable2And3Shape verifies the training distributions reproduce the
// paper's qualitative structure: IT is the strongest individual heuristic,
// HT the weakest, and every heuristic ranks a correct separator within the
// top four on every document.
func TestTable2And3Shape(t *testing.T) {
	for _, d := range []corpus.Domain{corpus.Obituaries, corpus.CarAds} {
		results := training(t, d)
		dists := RankingDistribution(results)
		at1 := map[string]float64{}
		for _, dist := range dists {
			at1[dist.Heuristic] = dist.AtRank[0]
			sum := 0.0
			for _, v := range dist.AtRank {
				sum += v
			}
			if sum < 0.999 {
				t.Errorf("%s %s: ranks beyond 4 (sum %.3f) — the paper's separators were always top-4", d, dist.Heuristic, sum)
			}
		}
		if at1["IT"] < at1["OM"] || at1["IT"] < at1["RP"] || at1["IT"] < at1["SD"] || at1["IT"] < at1["HT"] {
			t.Errorf("%s: IT (%.2f) should be the strongest heuristic: %v", d, at1["IT"], at1)
		}
		if at1["HT"] >= at1["OM"] || at1["HT"] >= at1["IT"] {
			t.Errorf("%s: HT (%.2f) should be the weakest heuristic: %v", d, at1["HT"], at1)
		}
		if at1["IT"] < 0.85 {
			t.Errorf("%s: IT rank-1 rate %.2f below the paper's band (≥0.85)", d, at1["IT"])
		}
	}
}

// TestTable3ITIsPerfect: the paper's Table 3 IT row is 100% for car ads.
func TestTable3ITIsPerfect(t *testing.T) {
	for _, dist := range RankingDistribution(training(t, corpus.CarAds)) {
		if dist.Heuristic == "IT" && dist.AtRank[0] != 1.0 {
			t.Errorf("car-ads IT rank-1 = %.2f, want 1.0", dist.AtRank[0])
		}
	}
}

// TestTable5ORSIHIsPerfect reproduces the paper's central training result:
// the full five-heuristic compound achieves a 100% success rate on the 100
// training documents, and every combination containing IT scores ≥ 90%.
func TestTable5ORSIHIsPerfect(t *testing.T) {
	all := append(append([]*DocResult{}, training(t, corpus.Obituaries)...), training(t, corpus.CarAds)...)
	sweep := CombinationSweep(all, certainty.PaperTable)
	byAbbrev := map[string]float64{}
	for _, row := range sweep {
		byAbbrev[row.Combination.Abbrev()] = row.SuccessRate
	}
	if len(sweep) != 26 {
		t.Fatalf("sweep rows = %d, want 26", len(sweep))
	}
	if byAbbrev["ORSIH"] != 1.0 {
		t.Errorf("ORSIH success = %.4f, want 1.0", byAbbrev["ORSIH"])
	}
	for ab, rate := range byAbbrev {
		if strings.Contains(ab, "I") && rate < 0.90 {
			t.Errorf("combination %s with IT scored %.2f, below the paper's ≥90%% band", ab, rate)
		}
	}
	// The paper's best non-IT combination tops out well below the IT ones.
	if byAbbrev["ORSH"] > byAbbrev["ORSIH"] {
		t.Errorf("ORSH (%.2f) should not beat ORSIH", byAbbrev["ORSH"])
	}
}

// TestTables6Through9CompoundAlwaysFirst reproduces the paper's "A" column:
// ORSIH ranks a correct separator first on every test site in all four
// domains.
func TestTables6Through9CompoundAlwaysFirst(t *testing.T) {
	for _, d := range corpus.AllDomains {
		rows, err := TestSetTable(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("%s: %d rows, want 5", d, len(rows))
		}
		for _, row := range rows {
			if row.A != 1 {
				t.Errorf("%s / %s: compound rank %d, want 1", d, row.Site, row.A)
			}
			for h, rank := range row.Ranks {
				if rank < 1 || rank > 4 {
					t.Errorf("%s / %s: %s rank %d outside the paper's observed 1–4", d, row.Site, h, rank)
				}
			}
		}
	}
}

// TestTable10 reproduces the paper's final table: on the 20 test documents
// no individual heuristic is perfect, IT is the best individual heuristic,
// HT the worst, and ORSIH reaches 100%.
func TestTable10(t *testing.T) {
	results, err := EvaluateAll(corpus.TestDocuments(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rates := IndividualSuccessRates(results)
	if rates["ORSIH"] != 1.0 {
		t.Errorf("ORSIH = %.2f, want 1.0", rates["ORSIH"])
	}
	for _, h := range certainty.AllHeuristics {
		if rates[h] >= 1.0 {
			t.Errorf("%s = 100%%; the paper's individual heuristics were all imperfect", h)
		}
	}
	if rates["IT"] < rates["OM"] || rates["IT"] < rates["RP"] || rates["IT"] < rates["SD"] || rates["IT"] < rates["HT"] {
		t.Errorf("IT should lead the individuals: %v", rates)
	}
	for _, h := range certainty.AllHeuristics {
		if h != "HT" && rates["HT"] > rates[h] {
			t.Errorf("HT should trail the individuals: %v", rates)
		}
	}
}

// TestCalibratedFactorsAgreeWithPipeline: calibrating certainty factors from
// the measured training distributions and re-running the compound with them
// must also yield a perfect training success rate (self-consistency of the
// paper's methodology).
func TestCalibratedFactorsAgreeWithPipeline(t *testing.T) {
	obits := training(t, corpus.Obituaries)
	cars := training(t, corpus.CarAds)
	calibrated := certainty.Calibrate(append(RankingDistribution(obits), RankingDistribution(cars)...))
	all := append(append([]*DocResult{}, obits...), cars...)
	sweep := CombinationSweep(all, calibrated)
	for _, row := range sweep {
		if row.Combination.Abbrev() == "ORSIH" && row.SuccessRate < 1.0 {
			t.Errorf("ORSIH under calibrated factors = %.4f, want 1.0", row.SuccessRate)
		}
	}
}

// TestLearnedSeparatorListMatchesPaperHead re-derives the IT list by the
// paper's §4.2 methodology (count separator tags across the 100 training
// documents) and checks it leads with the same tags as the paper's
// published list: hr first, the table-row tags next, p among the head.
func TestLearnedSeparatorListMatchesPaperHead(t *testing.T) {
	var obs [][]string
	for _, d := range []corpus.Domain{corpus.Obituaries, corpus.CarAds} {
		for _, doc := range corpus.TrainingDocuments(d) {
			obs = append(obs, doc.Truth)
		}
	}
	list := heuristic.LearnSeparatorList(obs)
	if len(list) == 0 || list[0] != "hr" {
		t.Fatalf("learned list = %v, want hr first (as in the paper's list)", list)
	}
	pos := map[string]int{}
	for i, tag := range list {
		pos[tag] = i
	}
	for _, tag := range []string{"tr", "td", "p"} {
		i, ok := pos[tag]
		if !ok || i > 4 {
			t.Errorf("tag %s at position %d of learned list %v; paper has it in the head", tag, i, list)
		}
	}
}

// TestDiscoveryInvariantUnderMangling is the failure-injection test: the
// compound heuristic must still pick a correct separator on every test
// document after its HTML is mangled (dropped optional end-tags, random
// case, injected comments, noise whitespace) — the Appendix A
// normalization's whole purpose.
func TestDiscoveryInvariantUnderMangling(t *testing.T) {
	for _, d := range corpus.TestDocuments() {
		for seed := int64(0); seed < 2; seed++ {
			mangled := *d
			mangled.HTML = corpus.Mangle(d.HTML, seed)
			dr, err := Evaluate(&mangled, core.Options{})
			if err != nil {
				t.Fatalf("%s seed %d: %v", d.Site.Name, seed, err)
			}
			if dr.Success != 1.0 {
				t.Errorf("%s %s seed %d: compound failed on mangled HTML (sc=%.2f)\n%s",
					d.Site.Name, d.Site.Domain, seed, dr.Success, core.Explain(dr.Compound))
			}
		}
	}
}

func TestEvaluateRanksAreConsistent(t *testing.T) {
	doc := corpus.TestSites(corpus.Obituaries)[0].Generate(0)
	dr, err := Evaluate(doc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Success != 1.0 {
		t.Errorf("success = %v", dr.Success)
	}
	if dr.CompoundRank != 1 {
		t.Errorf("compound rank = %d", dr.CompoundRank)
	}
	for h, rank := range dr.HeuristicRank {
		ranking := dr.Rankings[h]
		best := MaxRank + 1
		for _, truth := range doc.Truth {
			if k := ranking.RankOf(truth); k > 0 && k < best {
				best = k
			}
		}
		if rank != best {
			t.Errorf("%s rank %d, recomputed %d", h, rank, best)
		}
	}
}

// TestParallelEvaluationMatchesSequential: the worker-pool path must give
// exactly the sequential results, in order.
func TestParallelEvaluationMatchesSequential(t *testing.T) {
	docs := corpus.TestDocuments()
	seq, err := EvaluateAll(docs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		par, err := EvaluateAllParallel(docs, core.Options{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Doc != seq[i].Doc {
				t.Errorf("workers=%d: result %d out of order", workers, i)
			}
			if par[i].Success != seq[i].Success || par[i].CompoundRank != seq[i].CompoundRank {
				t.Errorf("workers=%d doc %d: results differ", workers, i)
			}
		}
	}
}

func TestSuccessRateAveragesScD(t *testing.T) {
	rs := []*DocResult{{Success: 1}, {Success: 0.5}, {Success: 0}}
	if got := SuccessRate(rs); got != 0.5 {
		t.Errorf("SuccessRate = %v, want 0.5", got)
	}
	if got := SuccessRate(nil); got != 0 {
		t.Errorf("SuccessRate(nil) = %v", got)
	}
}

func TestFormatters(t *testing.T) {
	obits := training(t, corpus.Obituaries)
	dists := RankingDistribution(obits)
	out := FormatDistributions("Table 2", dists)
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "OM") || !strings.Contains(out, "%") {
		t.Errorf("FormatDistributions output:\n%s", out)
	}
	ct := FormatCertaintyTable("Table 4", certainty.PaperTable)
	if !strings.Contains(ct, "84.5%") {
		t.Errorf("FormatCertaintyTable output:\n%s", ct)
	}
	sweep := CombinationSweep(obits, certainty.PaperTable)
	cs := FormatCombinations(sweep)
	if !strings.Contains(cs, "ORSIH") {
		t.Errorf("FormatCombinations output:\n%s", cs)
	}
	rows, err := TestSetTable(corpus.Obituaries)
	if err != nil {
		t.Fatal(err)
	}
	tt := FormatTestTable("Table 6", rows)
	if !strings.Contains(tt, "Alameda") {
		t.Errorf("FormatTestTable output:\n%s", tt)
	}
	sr := FormatSuccessRates(map[string]float64{"OM": 0.8, "ORSIH": 1.0})
	if !strings.Contains(sr, "ORSIH") || !strings.Contains(sr, "100.0%") {
		t.Errorf("FormatSuccessRates output:\n%s", sr)
	}
}
