package repro

// Allocation gates for the byte-level hot path (docs/PERFORMANCE.md). Each
// test pins an AllocsPerRun ceiling on a fixed corpus document, so a change
// that quietly reintroduces per-request allocation — a string conversion in
// the tokenizer, a forgotten pooled buffer, an escaping scratch slice —
// fails here with the measured count instead of surfacing months later as a
// throughput regression. Ceilings are measured numbers plus ~20% headroom,
// not aspirations: lower them when the measured count drops.
//
// The structural layers have hard zero gates (warm target 0): the arena
// parse itself (tagtree.TestParseArenaWarmZeroAllocs) and the template
// fingerprint scan (TestFingerprintDocAllocs below). Full discovery
// legitimately allocates its per-request answer — rankings, score maps, the
// Result — and the recognizer's regexp matches; those ceilings bound that
// spend.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/tagtree"
	"repro/internal/template"
)

// allocDoc returns the fixed document the ceilings are calibrated against.
func allocDoc(t *testing.T) *corpus.Document {
	t.Helper()
	docs := corpus.TestDocuments()
	if len(docs) == 0 {
		t.Fatal("empty test corpus")
	}
	return docs[0]
}

// skipUnderRace skips allocation/throughput gates when the race detector is
// on: its instrumentation allocates shadow state of its own and slows the
// hot path several-fold, so the measured numbers gate the detector, not the
// code. The arena-safety tests below do NOT skip — -race is their point.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation/throughput gates are meaningless under -race instrumentation")
	}
}

func TestDiscoverAllocs(t *testing.T) {
	skipUnderRace(t)
	d := allocDoc(t)
	doc := []byte(d.HTML)
	arena := tagtree.AcquireArena()
	defer arena.Release()

	t.Run("NoOntology", func(t *testing.T) {
		// Parse + heuristics + answer assembly; no recognizer. Measured 93
		// on the seed corpus document.
		const ceiling = 120
		opts := core.Options{Arena: arena}
		got := testing.AllocsPerRun(50, func() {
			if _, err := core.DiscoverBytes(doc, opts); err != nil {
				t.Fatal(err)
			}
		})
		if got > ceiling {
			t.Errorf("DiscoverBytes (no ontology) allocates %.0f/run, ceiling %d", got, ceiling)
		}
	})

	t.Run("WithOntology", func(t *testing.T) {
		// Adds the recognizer scan: each regexp match allocates its index
		// pair, so this scales with the document's match count. Measured
		// 1112 on the seed corpus document.
		const ceiling = 1400
		opts := core.Options{Ontology: BuiltinOntology(string(d.Site.Domain)), Arena: arena}
		got := testing.AllocsPerRun(20, func() {
			if _, err := core.DiscoverBytes(doc, opts); err != nil {
				t.Fatal(err)
			}
		})
		if got > ceiling {
			t.Errorf("DiscoverBytes (ontology) allocates %.0f/run, ceiling %d", got, ceiling)
		}
	})
}

func TestSplitAllocs(t *testing.T) {
	skipUnderRace(t)
	d := allocDoc(t)
	arena := tagtree.AcquireArena()
	defer arena.Release()
	res, err := core.DiscoverBytes([]byte(d.HTML), core.Options{Arena: arena})
	if err != nil {
		t.Fatal(err)
	}
	// One Record (with its cleaned text) per boundary, plus the merge-walk's
	// collapsed text chunks. Measured 92 on the seed corpus document.
	const ceiling = 120
	got := testing.AllocsPerRun(50, func() {
		core.Split(d.HTML, res)
	})
	if got > ceiling {
		t.Errorf("Split allocates %.0f/run, ceiling %d", got, ceiling)
	}
}

func TestFingerprintDocAllocs(t *testing.T) {
	skipUnderRace(t)
	d := allocDoc(t)
	template.FingerprintDoc(d.HTML) // warm the scanner pool
	// The tag-only fingerprint scan is fully pooled: zero allocations warm,
	// exactly — this is what keeps the template fast path ~50× cheaper than
	// full discovery.
	if got := testing.AllocsPerRun(50, func() {
		template.FingerprintDoc(d.HTML)
	}); got != 0 {
		t.Errorf("FingerprintDoc allocates %.0f/run warm, want 0", got)
	}
}

// TestArenaReleaseDoesNotCorruptWireResults is the consumer-side half of the
// arena safety contract: everything a caller keeps from a discovery must be
// deep-copied out before the arena is released (see docs/PERFORMANCE.md).
// The wire snapshot taken while the arena was live must be byte-identical to
// the string path's answer even after the arena has been released,
// re-acquired, and dirtied by parsing a different document.
func TestArenaReleaseDoesNotCorruptWireResults(t *testing.T) {
	docs := corpus.TestDocuments()
	if len(docs) < 2 {
		t.Fatal("need two corpus documents")
	}
	d, other := docs[0], docs[1]
	opts := core.Options{Ontology: BuiltinOntology(string(d.Site.Domain))}

	arena := tagtree.AcquireArena()
	aopts := opts
	aopts.Arena = arena
	res, err := core.DiscoverBytes([]byte(d.HTML), aopts)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := fromCore(res) // deep copy, taken while the arena is live
	arena.Release()

	// Dirty the pool: the released arena (or one recycled from it) parses an
	// unrelated document, overwriting any scratch the snapshot could have
	// wrongly aliased.
	arena2 := tagtree.AcquireArena()
	defer arena2.Release()
	dirty := core.Options{Ontology: BuiltinOntology(string(other.Site.Domain)), Arena: arena2}
	if _, err := core.DiscoverBytes([]byte(other.HTML), dirty); err != nil {
		t.Fatal(err)
	}

	ref, err := core.Discover(d.HTML, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := fromCore(ref); !reflect.DeepEqual(snapshot, want) {
		t.Errorf("wire snapshot corrupted after arena release:\n got %+v\nwant %+v", snapshot, want)
	}
}
