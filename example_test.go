package repro_test

import (
	"fmt"
	"strings"

	"repro"
)

// A small classifieds page: three car ads separated by horizontal rules.
const page = `<html><body><div>
<hr><b>1994 Ford Taurus</b>, red, good condition. Asking $4,500 obo. Call (801) 555-1234.
<hr><b>1991 Honda Civic</b>, blue, runs great. Asking $2,900. Call (801) 555-9876.
<hr><b>1997 Toyota Camry</b>, white, like new. Asking $11,200. Call (435) 555-4321.
<hr></div></body></html>`

func ExampleDiscover() {
	res, err := repro.Discover(page)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Separator)
	// Output: hr
}

func ExampleSplit() {
	res, err := repro.Discover(page)
	if err != nil {
		panic(err)
	}
	for i, rec := range repro.Split(page, res) {
		fmt.Printf("%d: %s\n", i+1, strings.TrimSpace(rec.Text[:30]))
	}
	// Output:
	// 1: 1994 Ford Taurus , red, good c
	// 2: 1991 Honda Civic , blue, runs
	// 3: 1997 Toyota Camry , white, lik
}

func ExampleExtract() {
	db, err := repro.Extract(page, repro.BuiltinOntology("carad"))
	if err != nil {
		panic(err)
	}
	for _, row := range db.Table("CarAd").Select(nil) {
		fmt.Println(row.Get("Year").Str, row.Get("Make").Str, row.Get("Price").Str)
	}
	// Output:
	// 1994 Ford $4,500
	// 1991 Honda $2,900
	// 1997 Toyota $11,200
}

func ExampleClassify() {
	res, err := repro.Classify(page, repro.BuiltinOntology("carad"))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Kind)
	// Output: multiple-records
}

func ExampleDiscoverXML() {
	feed := `<catalog>
  <item><title>one</title></item>
  <item><title>two</title></item>
  <item><title>three</title></item>
</catalog>`
	res, err := repro.DiscoverXML(feed, repro.Options{
		SeparatorList: []string{"item", "entry"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Separator)
	// Output: item
}
